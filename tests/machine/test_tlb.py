"""TLB model tests: analytic vs. exact reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import (
    AnalyticTLB,
    BucketedAppend,
    RandomAccess,
    ReferenceTLB,
    SequentialScan,
    StridedScan,
    TLBConfig,
)

TLB = TLBConfig(entries=16, page_bytes=4096)


class TestAnalyticTLB:
    def test_sequential_one_miss_per_page(self):
        tlb = AnalyticTLB(TLB)
        stats = tlb.misses(SequentialScan(16_384, 4))  # 64 KB = 16 pages
        assert stats.misses == pytest.approx(16)

    def test_resident_within_reach_hits(self):
        tlb = AnalyticTLB(TLB)
        stats = tlb.misses(SequentialScan(1024, 4, resident=True))
        assert stats.misses == 0.0

    def test_bucketed_within_entries_cold_only(self):
        tlb = AnalyticTLB(TLB)
        # 8 buckets over 8 pages: everything stays mapped.
        stats = tlb.misses(BucketedAppend(10_000, 8, 4, 8 * 4096))
        assert stats.misses == pytest.approx(8)

    def test_bucketed_beyond_entries_thrash(self):
        tlb = AnalyticTLB(TLB)
        # 256 bucket streams over 256 pages vs 16 entries.
        stats = tlb.misses(BucketedAppend(10_000, 256, 4, 256 * 4096))
        assert stats.miss_rate > 0.8

    def test_locality_rescues_bucketed(self):
        tlb = AnalyticTLB(TLB)
        scattered = tlb.misses(BucketedAppend(10_000, 256, 4, 256 * 4096, locality=0.0))
        grouped = tlb.misses(BucketedAppend(10_000, 256, 4, 256 * 4096, locality=0.95))
        assert grouped.misses < scattered.misses / 5

    def test_random_beyond_reach(self):
        tlb = AnalyticTLB(TLB)
        stats = tlb.misses(RandomAccess(10_000, 64 * 4096, 4))
        assert stats.miss_rate == pytest.approx(1 - 16 / 64, abs=0.02)

    def test_strided_page_sized_stride(self):
        tlb = AnalyticTLB(TLB)
        stats = tlb.misses(StridedScan(100, 4, 4096))
        assert stats.misses == 100

    def test_reference_agreement_bucketed(self):
        rng = np.random.default_rng(11)
        n, n_buckets = 6000, 64
        bucket_bytes = 4096  # one page per bucket
        ptrs = np.zeros(n_buckets, dtype=np.int64)
        order = rng.integers(0, n_buckets, size=n)
        addrs = np.empty(n, dtype=np.int64)
        for k, b in enumerate(order):
            addrs[k] = b * bucket_bytes + (ptrs[b] * 4) % bucket_bytes
            ptrs[b] += 1
        ref = ReferenceTLB(TLB)
        ref.run(addrs)
        model = AnalyticTLB(TLB).misses(
            BucketedAppend(n, n_buckets, 4, n_buckets * bucket_bytes)
        )
        assert model.miss_rate == pytest.approx(ref.miss_rate, abs=0.1)

    @given(n=st.integers(0, 20_000), buckets=st.integers(1, 512))
    @settings(max_examples=40, deadline=None)
    def test_misses_bounded(self, n, buckets):
        stats = AnalyticTLB(TLB).misses(
            BucketedAppend(n, buckets, 4, max(1, n * 8))
        )
        assert 0 <= stats.misses <= stats.accesses


class TestReferenceTLB:
    def test_lru_behavior(self):
        tlb = ReferenceTLB(TLBConfig(2, 4096))
        assert not tlb.access(0)
        assert not tlb.access(4096)
        assert tlb.access(0)  # still mapped
        assert not tlb.access(8192)  # evicts page 1 (LRU)
        assert not tlb.access(4096)

    def test_reset(self):
        tlb = ReferenceTLB(TLB)
        tlb.access(0)
        tlb.reset()
        assert tlb.accesses == 0 and tlb.misses == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ReferenceTLB(TLB).access(-5)
