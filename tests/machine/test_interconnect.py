"""Interconnect contention-model tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Interconnect, MachineConfig

M16 = MachineConfig.origin2000(n_processors=16, scale=1)
M64 = MachineConfig.origin2000(n_processors=64, scale=1)


class TestTransfer:
    def test_zero_traffic(self):
        ic = Interconnect(M16)
        t = ic.transfer(np.zeros((16, 16)))
        assert t.bottleneck_ns == 0.0
        assert np.all(t.per_proc_ns == 0.0)

    def test_same_node_traffic_free(self):
        ic = Interconnect(M16)
        traffic = np.zeros((16, 16))
        traffic[0, 1] = 1 << 20  # procs 0,1 share a node
        t = ic.transfer(traffic)
        assert t.total_bytes == 0.0
        assert np.all(t.per_proc_ns == 0.0)

    def test_single_flow_time(self):
        ic = Interconnect(M16)
        traffic = np.zeros((16, 16))
        traffic[0, 15] = 1 << 20
        t = ic.transfer(traffic)
        expected = (1 << 20) / (M16.link_bw_bytes_per_ns / 2)
        assert t.per_proc_ns[0] == pytest.approx(expected, rel=0.01)
        assert t.per_proc_ns[15] == pytest.approx(expected, rel=0.01)

    def test_idle_procs_unaffected(self):
        ic = Interconnect(M16)
        traffic = np.zeros((16, 16))
        traffic[0, 15] = 1 << 16
        t = ic.transfer(traffic)
        assert t.per_proc_ns[5] == 0.0

    def test_all_to_all_bottleneck_exceeds_own(self):
        """Under uniform all-to-all, the node link shared by two
        processors makes the phase slower than each processor's own
        serialized traffic."""
        ic = Interconnect(M64)
        traffic = np.full((64, 64), 4096.0)
        np.fill_diagonal(traffic, 0.0)
        t = ic.transfer(traffic)
        own = traffic[0].sum() / (M64.link_bw_bytes_per_ns / 2)
        assert t.per_proc_ns[0] > own

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Interconnect(M16).transfer(-np.ones((16, 16)))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Interconnect(M16).transfer(np.zeros((4, 4)))

    @given(st.integers(0, 2**22))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_traffic(self, b):
        ic = Interconnect(M16)
        t1 = np.zeros((16, 16))
        t1[0, 8] = b
        t2 = t1.copy()
        t2[0, 8] = b * 2
        a = ic.transfer(t1)
        c = ic.transfer(t2)
        assert c.per_proc_ns[0] >= a.per_proc_ns[0]


class TestLatency:
    def test_uncontended_latency_matches_topology(self):
        ic = Interconnect(M64)
        assert ic.uncontended_latency_ns(0, 1) == pytest.approx(313.0)
        assert ic.uncontended_latency_ns(0, 63) == pytest.approx(1010.0)
