"""Tests for machine configuration and presets."""

import pytest

from repro.machine import CacheConfig, MachineConfig, TLBConfig


class TestCacheConfig:
    def test_origin_l2_geometry(self):
        l2 = CacheConfig(4 * 1024 * 1024, 128, 2)
        assert l2.n_lines == 32768
        assert l2.n_sets == 16384

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ValueError):
            CacheConfig(1000, 128, 2)

    def test_rejects_non_pow2_line(self):
        with pytest.raises(ValueError):
            CacheConfig(4096, 96, 2)

    @pytest.mark.parametrize("size,line,assoc", [(0, 128, 2), (4096, 0, 2), (4096, 128, 0)])
    def test_rejects_non_positive(self, size, line, assoc):
        with pytest.raises(ValueError):
            CacheConfig(size, line, assoc)


class TestTLBConfig:
    def test_reach(self):
        tlb = TLBConfig(64, 16 * 1024)
        assert tlb.reach_bytes == 1024 * 1024

    def test_rejects_non_pow2_page(self):
        with pytest.raises(ValueError):
            TLBConfig(64, 3000)


class TestMachineConfig:
    def test_default_is_origin2000_shape(self):
        m = MachineConfig()
        assert m.n_processors == 64
        assert m.n_nodes == 32
        assert m.n_routers == 16
        assert m.hypercube_dim == 4

    def test_node_and_router_mapping(self):
        m = MachineConfig()
        assert m.node_of(0) == 0
        assert m.node_of(1) == 0
        assert m.node_of(2) == 1
        assert m.router_of(0) == 0
        assert m.router_of(4) == 1
        assert m.router_of(63) == 15

    def test_node_of_rejects_out_of_range(self):
        m = MachineConfig()
        with pytest.raises(ValueError):
            m.node_of(64)
        with pytest.raises(ValueError):
            m.node_of(-1)

    def test_rejects_non_pow2_router_count(self):
        with pytest.raises(ValueError):
            MachineConfig(n_processors=48)  # 24 nodes -> 12 routers

    def test_rejects_mismatched_line_sizes(self):
        with pytest.raises(ValueError):
            MachineConfig(
                l1=CacheConfig(32 * 1024, 64, 2),
                l2=CacheConfig(4 * 1024 * 1024, 128, 2),
            )

    @pytest.mark.parametrize("p", [16, 32, 64])
    def test_paper_processor_counts(self, p):
        m = MachineConfig.origin2000(n_processors=p)
        assert m.n_processors == p

    def test_with_processors(self):
        m = MachineConfig.origin2000(64).with_processors(16)
        assert m.n_processors == 16
        assert m.n_routers == 4

    def test_origin_scaling_divides_capacities(self):
        full = MachineConfig.origin2000(scale=1)
        scaled = MachineConfig.origin2000(scale=64)
        assert scaled.l2.size_bytes == full.l2.size_bytes // 64
        assert scaled.l2.line_bytes == full.l2.line_bytes  # line stays
        assert scaled.page_bytes == full.page_bytes // 64

    def test_origin_scale_must_be_pow2(self):
        with pytest.raises(ValueError):
            MachineConfig.origin2000(scale=3)

    def test_page_override(self):
        m = MachineConfig.origin2000(scale=1, page_bytes=256 * 1024)
        assert m.page_bytes == 256 * 1024

    def test_tiny_preset_valid(self):
        m = MachineConfig.tiny()
        assert m.n_processors == 4
        assert m.n_routers == 2

    def test_ns_per_cycle(self):
        m = MachineConfig()
        assert m.ns_per_cycle == pytest.approx(1000.0 / 195.0)
