"""Cost-model tests."""

import dataclasses

import pytest

from repro.machine import CostModel, DEFAULT_COSTS


class TestCostModel:
    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_COSTS.hist_busy_ns_per_key = 1.0  # type: ignore[misc]

    def test_scaled_overrides(self):
        c = DEFAULT_COSTS.scaled(tlb_miss_ns=0.0, hist_busy_ns_per_key=50.0)
        assert c.tlb_miss_ns == 0.0
        assert c.hist_busy_ns_per_key == 50.0
        # Everything else untouched.
        assert c.permute_busy_ns_per_key == DEFAULT_COSTS.permute_busy_ns_per_key
        # Original untouched.
        assert DEFAULT_COSTS.tlb_miss_ns > 0

    def test_scaled_rejects_unknown_field(self):
        with pytest.raises(TypeError):
            DEFAULT_COSTS.scaled(nonexistent_knob=1.0)

    def test_calibration_orderings(self):
        """Relationships the calibration relies on (see EXPERIMENTS.md)."""
        c = DEFAULT_COSTS
        # The vendor MPI is costlier than the authors' on every axis.
        assert c.mpi_sgi_overhead_ns > c.mpi_new_overhead_ns
        assert c.mpi_sgi_ns_per_byte > c.mpi_new_ns_per_byte
        # SHMEM's one-sided gets are the cheapest explicit transport.
        assert c.shmem_overhead_ns < c.mpi_new_overhead_ns
        assert c.shmem_ns_per_byte < c.mpi_new_ns_per_byte
        # Scattered remote stores cost more than bulk copies once load,
        # p-scaling and false sharing apply (the base constant alone is
        # pre-false-sharing; see tests/machine/test_directory.py for the
        # effective comparison).
        assert (
            c.scattered_write_contention + c.scattered_write_contention_span
            > c.bulk_write_contention
        )
        assert c.false_sharing_chunk_factor > 0

    def test_all_costs_non_negative(self):
        for f in dataclasses.fields(CostModel):
            assert getattr(DEFAULT_COSTS, f.name) >= 0, f.name
