"""MemorySystem attribution tests (LMEM vs RMEM, scatter penalty)."""

import pytest

from repro.machine import (
    BucketedAppend,
    HomeLocation,
    MachineConfig,
    MemorySystem,
    SequentialScan,
)

M = MachineConfig.origin2000(n_processors=64, scale=1, page_bytes=64 * 1024)


class TestHomeLocation:
    def test_local(self):
        h = HomeLocation.local()
        assert h.remote_fraction == 0.0

    def test_partitioned_fraction(self):
        h = HomeLocation.partitioned(M)
        assert h.remote_fraction == pytest.approx(1 - 2 / 64)
        assert h.remote_ns > M.local_read_ns

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            HomeLocation(1.5, 100.0)

    def test_remote_needs_latency(self):
        with pytest.raises(ValueError):
            HomeLocation(0.5, 0.0)


class TestAttribution:
    def test_local_scan_charges_lmem_only(self):
        ms = MemorySystem(M)
        mt = ms.pattern_time(SequentialScan(1 << 20, 4))
        assert mt.lmem_ns > 0
        assert mt.rmem_ns == 0

    def test_remote_scan_charges_rmem(self):
        ms = MemorySystem(M)
        mt = ms.pattern_time(SequentialScan(1 << 20, 4), HomeLocation.remote(M))
        assert mt.rmem_ns > 0
        assert mt.lmem_ns < mt.rmem_ns

    def test_memoization_consistent(self):
        ms = MemorySystem(M)
        pat = SequentialScan(4096, 4)
        assert ms.pattern_time(pat) is ms.pattern_time(SequentialScan(4096, 4))

    def test_tlb_weighting_in_lmem(self):
        """A span far beyond TLB reach costs more per miss (walk factor)."""
        ms = MemorySystem(M)
        n = 1 << 20
        near = ms.pattern_time(BucketedAppend(n, 256, 4, M.tlb.reach_bytes * 4))
        far = ms.pattern_time(BucketedAppend(n, 256, 4, M.tlb.reach_bytes * 64))
        assert far.lmem_ns > near.lmem_ns


class TestScatterPenalty:
    def test_small_span_no_penalty(self):
        ms = MemorySystem(M)
        small = ms.pattern_time(BucketedAppend(1 << 16, 256, 4, 1 << 18))
        # Under L2/2, misses are cold-only.
        assert small.l2_misses == pytest.approx((1 << 16) / 32, rel=0.05)

    def test_large_span_penalty_kicks_in(self):
        ms = MemorySystem(M)
        n = 1 << 20
        l2 = M.l2.size_bytes
        fits = ms.pattern_time(BucketedAppend(n, 256, 4, l2 // 4))
        spills = ms.pattern_time(BucketedAppend(n, 256, 4, l2 * 4))
        assert spills.l2_misses > 2 * fits.l2_misses

    def test_locality_suppresses_penalty(self):
        ms = MemorySystem(M)
        n, span = 1 << 20, M.l2.size_bytes * 4
        scattered = ms.pattern_time(BucketedAppend(n, 256, 4, span, locality=0.0))
        grouped = ms.pattern_time(BucketedAppend(n, 256, 4, span, locality=0.98))
        assert grouped.lmem_ns < scattered.lmem_ns

    def test_fewer_streams_less_pressure(self):
        """Half the active bucket streams (the 'half' distribution) means
        less L1 pressure and a smaller penalty."""
        ms = MemorySystem(M)
        n, span = 1 << 20, M.l2.size_bytes * 4
        many = ms.pattern_time(BucketedAppend(n, 256, 4, span))
        few = ms.pattern_time(BucketedAppend(n, 128, 4, span))
        assert few.lmem_ns < many.lmem_ns

    def test_ramp_partial_at_l2_boundary(self):
        ms = MemorySystem(M)
        n = 1 << 20
        l2 = M.l2.size_bytes
        at_l2 = ms.pattern_time(BucketedAppend(n, 256, 4, l2))
        way_past = ms.pattern_time(BucketedAppend(n, 256, 4, 8 * l2))
        assert 0 < at_l2.l2_misses < way_past.l2_misses
