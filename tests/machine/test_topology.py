"""Hypercube topology tests, including property-based routing checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import (
    Hypercube,
    MachineConfig,
    average_remote_latency_ns,
    remote_latency_ns,
)
from repro.machine.topology import bit_count, proc_hop_matrix


class TestHypercube:
    def test_origin_dimensions(self):
        cube = Hypercube.for_machine(MachineConfig())
        assert cube.dim == 4
        assert cube.n_routers == 16
        assert cube.diameter == 4
        assert cube.n_links == 32
        assert cube.bisection_links == 8

    def test_hops_is_hamming_distance(self):
        cube = Hypercube(4)
        assert cube.hops(0b0000, 0b1111) == 4
        assert cube.hops(0b0101, 0b0100) == 1
        assert cube.hops(3, 3) == 0

    def test_route_endpoints_and_length(self):
        cube = Hypercube(4)
        path = cube.route(0b0000, 0b1011)
        assert path[0] == 0 and path[-1] == 0b1011
        assert len(path) == cube.hops(0, 0b1011) + 1

    def test_route_steps_are_single_hops(self):
        cube = Hypercube(4)
        path = cube.route(5, 10)
        for a, b in zip(path, path[1:]):
            assert cube.hops(a, b) == 1

    def test_neighbors(self):
        cube = Hypercube(3)
        assert sorted(cube.neighbors(0)) == [1, 2, 4]

    def test_hop_matrix_symmetric_zero_diagonal(self):
        cube = Hypercube(4)
        mat = cube.hop_matrix()
        assert np.array_equal(mat, mat.T)
        assert np.all(np.diag(mat) == 0)
        assert mat.max() == 4

    def test_average_hops_formula(self):
        cube = Hypercube(4)
        mat = cube.hop_matrix()
        n = cube.n_routers
        brute = mat.sum() / (n * (n - 1))
        assert cube.average_hops() == pytest.approx(brute)

    def test_zero_dim_cube(self):
        cube = Hypercube(0)
        assert cube.n_routers == 1
        assert cube.average_hops() == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Hypercube(3).hops(0, 8)

    @given(st.integers(0, 15), st.integers(0, 15))
    @settings(max_examples=100, deadline=None)
    def test_route_links_count_matches_hops(self, a, b):
        cube = Hypercube(4)
        assert len(cube.links_on_route(a, b)) == cube.hops(a, b)

    @given(st.integers(0, 63), st.integers(0, 63), st.integers(0, 63))
    @settings(max_examples=100, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        cube = Hypercube(6)
        assert cube.hops(a, c) <= cube.hops(a, b) + cube.hops(b, c)


class TestBitCount:
    def test_known_values(self):
        assert list(bit_count(np.array([0, 1, 3, 255, 256]))) == [0, 1, 2, 8, 1]

    @given(st.integers(0, 2**40))
    @settings(max_examples=50, deadline=None)
    def test_matches_python_bitcount(self, x):
        assert bit_count(np.array([x]))[0] == x.bit_count()


class TestLatencies:
    def test_paper_latency_endpoints(self):
        """Local 313 ns; furthest (4 hops) 1010 ns; average near 796 ns."""
        m = MachineConfig()
        assert remote_latency_ns(m, 0, 1) == pytest.approx(313.0)  # same node
        assert remote_latency_ns(m, 0, 63) == pytest.approx(1010.0)  # 4 hops
        avg = average_remote_latency_ns(m, 0)
        assert 700 < avg < 900  # paper: 796 ns average

    def test_same_router_other_node(self):
        m = MachineConfig()
        # proc 2 is node 1, same router 0 as proc 0: remote but 0 hops.
        assert remote_latency_ns(m, 0, 2) == pytest.approx(313.0 + 297.0)

    def test_proc_hop_matrix_shape(self):
        m = MachineConfig.tiny()
        mat = proc_hop_matrix(m)
        assert mat.shape == (4, 4)
        assert np.all(np.diag(mat) == 0)

    def test_single_node_machine_average(self):
        m = MachineConfig(
            n_processors=2,
            procs_per_node=2,
            nodes_per_router=1,
        )
        assert average_remote_latency_ns(m) == m.local_read_ns
