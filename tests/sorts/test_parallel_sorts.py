"""Correctness and structure tests for the simulated parallel sorts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import generate
from repro.machine import MachineConfig
from repro.sorts import (
    ParallelRadixSort,
    ParallelSampleSort,
    sequential_radix_sort,
)

MACHINE16 = MachineConfig.origin2000(n_processors=16, scale=1)
RADIX_MODELS = ["ccsas", "ccsas-new", "mpi-new", "mpi-sgi", "shmem"]
SAMPLE_MODELS = ["ccsas", "mpi-new", "mpi-sgi", "shmem"]


def run_radix(keys, model, p=16, radix=8, **kw):
    machine = MachineConfig.origin2000(n_processors=p, scale=1)
    return ParallelRadixSort(model, radix=radix).run(
        keys, n_procs=p, machine=machine, **kw
    )


def run_sample(keys, model, p=16, radix=11, **kw):
    machine = MachineConfig.origin2000(n_processors=p, scale=1)
    return ParallelSampleSort(model, radix=radix).run(
        keys, n_procs=p, machine=machine, **kw
    )


class TestSequential:
    def test_sorts(self):
        keys = generate("random", 4096, 1)
        res = sequential_radix_sort(keys)
        assert np.array_equal(res.sorted_keys, np.sort(keys))
        assert res.time_ns > 0
        assert len(res.per_pass_ns) == 4  # radix 8, 31-bit keys

    def test_time_scales_with_labeled_size(self):
        keys = generate("gauss", 4096, 1)
        small = sequential_radix_sort(keys, n_labeled=4096)
        big = sequential_radix_sort(keys, n_labeled=4096 * 64)
        assert big.time_ns > 32 * small.time_ns  # at least ~linear

    def test_rejects_bad_labeled(self):
        keys = generate("gauss", 4096, 1)
        with pytest.raises(ValueError):
            sequential_radix_sort(keys, n_labeled=5000)

    def test_empty(self):
        res = sequential_radix_sort(np.empty(0, dtype=np.int64))
        assert res.time_ns == 0.0


class TestRadixCorrectness:
    @pytest.mark.parametrize("model", RADIX_MODELS)
    def test_sorts_gauss(self, model):
        keys = generate("gauss", 16 * 512, 16)
        out = run_radix(keys, model)
        assert np.array_equal(out.sorted_keys, np.sort(keys))
        assert out.model_name in (model, "mpi-new")
        assert out.time_ns > 0

    @pytest.mark.parametrize(
        "dist", ["random", "zero", "bucket", "stagger", "half", "remote", "local"]
    )
    def test_sorts_every_distribution(self, dist):
        keys = generate(dist, 16 * 256, 16, radix=8)
        out = run_radix(keys, "shmem")
        assert np.array_equal(out.sorted_keys, np.sort(keys))

    @pytest.mark.parametrize("radix", [4, 6, 8, 11, 12])
    def test_sorts_any_radix(self, radix):
        keys = generate("random", 16 * 256, 16)
        out = run_radix(keys, "ccsas", radix=radix)
        assert np.array_equal(out.sorted_keys, np.sort(keys))
        assert out.passes == -(-31 // radix)

    @given(st.lists(st.integers(0, 2**31 - 1), min_size=16, max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_sorts_arbitrary_arrays(self, values):
        n = len(values) - len(values) % 16
        if n == 0:
            return
        keys = np.array(values[:n], dtype=np.int64)
        out = run_radix(keys, "shmem")
        assert np.array_equal(out.sorted_keys, np.sort(keys))

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            run_radix(np.arange(100), "shmem", p=16)

    def test_rejects_bad_radix(self):
        with pytest.raises(ValueError):
            ParallelRadixSort("shmem", radix=0)

    def test_rejects_bad_labeled_multiple(self):
        keys = generate("gauss", 16 * 64, 16)
        with pytest.raises(ValueError):
            run_radix(keys, "shmem", n_labeled=16 * 64 + 1)


class TestSampleCorrectness:
    @pytest.mark.parametrize("model", SAMPLE_MODELS)
    def test_sorts_gauss(self, model):
        keys = generate("gauss", 16 * 512, 16)
        out = run_sample(keys, model)
        assert np.array_equal(out.sorted_keys, np.sort(keys))

    @pytest.mark.parametrize(
        "dist", ["random", "zero", "bucket", "stagger", "half", "remote", "local"]
    )
    def test_sorts_every_distribution(self, dist):
        keys = generate(dist, 16 * 256, 16, radix=8)
        out = run_sample(keys, "ccsas")
        assert np.array_equal(out.sorted_keys, np.sort(keys))

    def test_all_equal_keys(self):
        keys = np.zeros(16 * 64, dtype=np.int64)
        out = run_sample(keys, "shmem")
        assert np.array_equal(out.sorted_keys, keys)

    @given(st.lists(st.integers(0, 1000), min_size=32, max_size=400))
    @settings(max_examples=25, deadline=None)
    def test_sorts_arbitrary_arrays(self, values):
        n = len(values) - len(values) % 16
        if n < 16:
            return
        keys = np.array(values[:n], dtype=np.int64)
        out = run_sample(keys, "mpi-new")
        assert np.array_equal(out.sorted_keys, np.sort(keys))


class TestReports:
    def test_counters_balance_wallclock(self):
        """Barriers make every processor's stacked time equal the run's
        wall clock (the paper's stacked-bar property)."""
        keys = generate("gauss", 16 * 512, 16)
        out = run_radix(keys, "shmem")
        totals = [c.total_ns for c in out.report.counters]
        assert max(totals) == pytest.approx(min(totals), rel=1e-6)

    def test_categories_nonnegative(self):
        keys = generate("gauss", 16 * 512, 16)
        for model in RADIX_MODELS:
            rep = run_radix(keys, model).report
            for c in rep.counters:
                assert c.busy_ns >= 0 and c.lmem_ns >= 0
                assert c.rmem_ns >= 0 and c.sync_ns >= 0

    def test_phase_records_cover_run(self):
        keys = generate("gauss", 16 * 256, 16)
        out = run_radix(keys, "mpi-new")
        per_phase = sum(rec.max_ns for rec in out.report.phases)
        # Phase maxima overestimate the barrier-aligned wall clock.
        assert per_phase >= out.time_ns * 0.95

    def test_speedup_helper(self):
        keys = generate("gauss", 16 * 512, 16)
        out = run_radix(keys, "shmem")
        assert out.speedup_vs(out.time_ns * 16) == pytest.approx(16)

    def test_messages_counted_for_mpi(self):
        keys = generate("gauss", 16 * 512, 16)
        out = run_radix(keys, "mpi-new")
        assert out.report.merged().messages > 0

    def test_protocol_transactions_counted_for_ccsas(self):
        keys = generate("gauss", 16 * 512, 16)
        out = run_radix(keys, "ccsas")
        assert out.report.merged().protocol_transactions > 0


class TestScaledRuns:
    def test_labeled_scaling_keeps_result(self):
        keys = generate("gauss", 16 * 256, 16)
        out = run_radix(keys, "shmem", n_labeled=16 * 256 * 16)
        assert np.array_equal(out.sorted_keys, np.sort(keys))
        assert out.n_labeled == 16 * 256 * 16

    def test_labeled_time_grows_with_scale(self):
        """Modeled time follows the labeled size, not the sample size --
        sublinearly at these tiny sizes because per-pass fixed costs
        (collectives, barriers) dominate."""
        keys = generate("gauss", 16 * 256, 16)
        t1 = run_radix(keys, "shmem", n_labeled=len(keys)).time_ns
        t16 = run_radix(keys, "shmem", n_labeled=len(keys) * 16).time_ns
        assert 1.5 * t1 < t16 < 16 * t1
