"""Tests for the shared sorting machinery, including the chunk-count
scale extrapolation against full-size ground truth."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import generate
from repro.sorts.common import (
    apply_radix_pass,
    choose_splitters,
    digits_for_pass,
    estimate_support,
    measure_locality,
    n_passes,
    partition_counts,
    proc_histograms,
    radix_comm_matrices,
    select_samples,
)


class TestPasses:
    @pytest.mark.parametrize(
        "radix,expected",
        [(6, 6), (7, 5), (8, 4), (9, 4), (10, 4), (11, 3), (12, 3), (16, 2)],
    )
    def test_paper_pass_counts(self, radix, expected):
        """The paper: r=7 -> 5 passes, r=8 -> 4, r=11/12 -> 3 (31-bit keys)."""
        assert n_passes(radix) == expected

    def test_rejects_bad_radix(self):
        with pytest.raises(ValueError):
            n_passes(0)


class TestDigits:
    def test_extraction(self):
        keys = np.array([0x0ABCDE, 0x123456])
        assert list(digits_for_pass(keys, 0, 8)) == [0xDE, 0x56]
        assert list(digits_for_pass(keys, 1, 8)) == [0xBC, 0x34]
        assert list(digits_for_pass(keys, 2, 8)) == [0x0A, 0x12]

    def test_rejects_negative_pass(self):
        with pytest.raises(ValueError):
            digits_for_pass(np.array([1]), -1, 8)

    @given(
        st.lists(st.integers(0, 2**31 - 1), min_size=1, max_size=200),
        st.integers(1, 12),
    )
    @settings(max_examples=50, deadline=None)
    def test_digits_reassemble_key(self, values, radix):
        keys = np.array(values, dtype=np.int64)
        rebuilt = np.zeros_like(keys)
        for k in range(n_passes(radix)):
            rebuilt |= digits_for_pass(keys, k, radix) << (k * radix)
        assert np.array_equal(rebuilt, keys)


class TestHistogramsAndPass:
    def test_histogram_counts(self):
        digits = np.array([0, 1, 1, 3, 0, 0, 2, 3])
        hist = proc_histograms(digits, 2, 2)
        assert hist.shape == (2, 4)
        assert list(hist[0]) == [1, 2, 0, 1]
        assert list(hist[1]) == [2, 0, 1, 1]
        assert hist.sum() == 8

    def test_histogram_rejects_indivisible(self):
        with pytest.raises(ValueError):
            proc_histograms(np.zeros(7, dtype=int), 2, 2)

    def test_apply_pass_is_stable(self):
        keys = np.array([0x21, 0x11, 0x22, 0x12])
        out = apply_radix_pass(keys, digits_for_pass(keys, 0, 4))
        # Low digit 1: 0x21 then 0x11 (original order); digit 2: 0x22, 0x12
        assert list(out) == [0x21, 0x11, 0x22, 0x12]

    @given(st.lists(st.integers(0, 2**31 - 1), min_size=1, max_size=500))
    @settings(max_examples=50, deadline=None)
    def test_full_lsd_sorts(self, values):
        keys = np.array(values, dtype=np.int64)
        cur = keys
        for k in range(n_passes(8)):
            cur = apply_radix_pass(cur, digits_for_pass(cur, k, 8))
        assert np.array_equal(cur, np.sort(keys))


class TestLocality:
    def test_constant_digits_full_locality(self):
        digits = np.full(100, 7)
        assert measure_locality(digits, 1) == pytest.approx(0.99, abs=0.02)

    def test_alternating_zero_locality(self):
        digits = np.tile([0, 1], 50)
        assert measure_locality(digits, 1) == 0.0

    def test_partition_boundaries_excluded(self):
        # A constant digit stream: with two partitions the cross-boundary
        # comparison must not count, lowering the measured locality.
        digits = np.full(8, 3)
        with_boundary = measure_locality(digits, 1)
        without = measure_locality(digits, 2)
        assert without < with_boundary

    def test_tiny_inputs(self):
        assert measure_locality(np.array([1]), 1) == 0.0
        assert measure_locality(np.array([], dtype=int), 1) == 0.0


class TestSupportEstimator:
    def test_fully_observed(self):
        # 64 distinct cells from plenty of keys: support is 64.
        assert estimate_support(64, 10_000, 64) == pytest.approx(64)

    def test_no_collisions_assumes_cap(self):
        assert estimate_support(5, 5, 100) == 100

    def test_zero_cases(self):
        assert estimate_support(0, 0, 10) == 0.0
        assert estimate_support(0, 5, 10) == 0.0

    def test_undersampled_uniform_recovers_support(self):
        """Draw m keys uniformly over S cells, observe D distinct; the
        estimator should recover ~S."""
        rng = np.random.default_rng(0)
        S, m = 256, 128
        d = len(np.unique(rng.integers(0, S, size=m)))
        s_hat = estimate_support(d, m, 1024)
        assert 0.6 * S < s_hat < 1.8 * S

    @given(
        st.integers(1, 500),
        st.integers(1, 5000),
        st.integers(1, 1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_bounded(self, d, m, cap):
        d = min(d, m)
        s = estimate_support(d, m, cap)
        assert 0 <= s <= cap
        if s > 0:
            assert s >= min(d, cap) - 1e-6


class TestCommMatrices:
    def test_conservation(self):
        """Every key appears in exactly one (i, j) cell."""
        p, r, n = 8, 6, 8 * 256
        keys = generate("random", n, p, radix=r)
        digits = digits_for_pass(keys, 0, r)
        hist = proc_histograms(digits, p, r)
        comm = radix_comm_matrices(hist, n // p)
        assert comm.bytes_matrix.sum() == pytest.approx(n * 4)
        # Destinations are exactly balanced (radix output partitioning).
        assert np.allclose(comm.bytes_matrix.sum(axis=0), n // p * 4)

    def test_chunks_positive_where_bytes(self):
        p, r, n = 4, 4, 4 * 64
        keys = generate("gauss", n, p, radix=r)
        digits = digits_for_pass(keys, 0, r)
        hist = proc_histograms(digits, p, r)
        comm = radix_comm_matrices(hist, n // p)
        assert np.all((comm.bytes_matrix > 0) <= (comm.chunks_matrix > 0))

    @pytest.mark.parametrize("dist", ["random", "gauss", "half", "bucket"])
    def test_scale_extrapolation_matches_full_size(self, dist):
        """Chunk counts estimated from a 1/scale sample should approximate
        the chunk counts measured on the full-size data."""
        p, r, scale = 8, 7, 8
        n_full = 8 * 4096
        full = generate(dist, n_full, p, radix=r, seed=2)
        digits_full = digits_for_pass(full, 0, r)
        hist_full = proc_histograms(digits_full, p, r)
        truth = radix_comm_matrices(hist_full, n_full // p).chunks_matrix.sum()

        n_small = n_full // scale
        small = generate(dist, n_small, p, radix=r, seed=2)
        digits_small = digits_for_pass(small, 0, r)
        hist_small = proc_histograms(digits_small, p, r)
        est = radix_comm_matrices(
            hist_small, n_small // p, scale=scale
        ).chunks_matrix.sum()
        assert est == pytest.approx(truth, rel=0.30)

    def test_half_structural_zeros_preserved(self):
        """The half distribution must keep its halved chunk count even
        after extrapolation (structurally empty odd digits stay empty)."""
        p, r, scale = 8, 7, 8
        n = 8 * 1024
        full_kwargs = dict(p=p, radix=r, seed=3)
        chunks = {}
        for dist in ("gauss", "half"):
            keys = generate(dist, n, **full_kwargs)
            digits = digits_for_pass(keys, 0, r)
            hist = proc_histograms(digits, p, r)
            chunks[dist] = radix_comm_matrices(
                hist, n // p, scale=scale
            ).chunks_matrix.sum()
        assert chunks["half"] < 0.65 * chunks["gauss"]

    def test_scale_one_is_identity(self):
        p, r, n = 4, 5, 4 * 256
        keys = generate("random", n, p, radix=r)
        hist = proc_histograms(digits_for_pass(keys, 0, r), p, r)
        a = radix_comm_matrices(hist, n // p, scale=1)
        assert np.all(a.chunks_matrix == np.floor(a.chunks_matrix))

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            radix_comm_matrices(np.zeros((2, 4)), 0)


class TestSampleHelpers:
    def test_select_samples_even_spacing(self):
        parts = [np.arange(1000), np.arange(1000, 2000)]
        s = select_samples(parts, samples_per_proc=10)
        assert len(s) == 20
        assert s[0] == 0 and s[10] == 1000

    def test_select_handles_small_parts(self):
        parts = [np.array([5]), np.array([], dtype=int)]
        s = select_samples(parts, samples_per_proc=10)
        assert list(s) == [5]

    def test_choose_splitters_count_and_order(self):
        samples = np.arange(1000)[::-1].copy()
        spl = choose_splitters(samples, 8)
        assert len(spl) == 7
        assert np.all(np.diff(spl) >= 0)

    def test_choose_splitters_degenerate(self):
        assert choose_splitters(np.array([], dtype=int), 4).size == 0
        assert choose_splitters(np.arange(10), 1).size == 0
        with pytest.raises(ValueError):
            choose_splitters(np.arange(10), 0)

    def test_partition_counts_conserve(self):
        rng = np.random.default_rng(1)
        parts = [np.sort(rng.integers(0, 1000, 256)) for _ in range(4)]
        spl = choose_splitters(np.concatenate(parts), 4)
        counts = partition_counts(parts, spl)
        assert counts.shape == (4, 4)
        assert np.all(counts >= 0)
        assert np.array_equal(counts.sum(axis=1), [256] * 4)

    def test_partition_counts_duplicates_balanced(self):
        """All-equal keys must not pile onto a single destination."""
        parts = [np.zeros(256, dtype=np.int64) for _ in range(4)]
        spl = choose_splitters(np.concatenate(parts), 4)
        counts = partition_counts(parts, spl)
        assert counts.sum() == 1024
        per_dest = counts.sum(axis=0)
        assert per_dest.max() <= 2 * per_dest.min() + 4

    def test_partition_counts_zero_distribution_balance(self):
        """The paper's 'zero' workload (10% zeros) must spread zeros."""
        keys = generate("zero", 8 * 512, 8)
        parts = [np.sort(keys[i * 512 : (i + 1) * 512]) for i in range(8)]
        spl = choose_splitters(select_samples(parts), 8)
        counts = partition_counts(parts, spl)
        received = counts.sum(axis=0)
        assert received.max() < 2.0 * (keys.size / 8)

    @given(
        values=st.lists(st.integers(0, 50), min_size=8, max_size=400),
        p=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_respects_global_order(self, values, p):
        """Concatenating per-destination slices in destination order and
        sorting each must yield a globally sorted sequence."""
        arr = np.array(values, dtype=np.int64)
        n = len(arr) - len(arr) % p
        arr = arr[:n]
        if n == 0:
            return
        per = n // p
        parts = [np.sort(arr[i * per : (i + 1) * per]) for i in range(p)]
        spl = choose_splitters(select_samples(parts, 16), p)
        counts = partition_counts(parts, spl)
        assert np.array_equal(counts.sum(axis=1), [per] * p)
        received = []
        for dst in range(p):
            chunks = []
            for src in range(p):
                start = int(counts[src, :dst].sum())
                chunks.append(parts[src][start : start + int(counts[src, dst])])
            received.append(np.sort(np.concatenate(chunks)))
        result = np.concatenate(received)
        assert np.array_equal(result, np.sort(arr))
