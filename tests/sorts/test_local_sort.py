"""Tests for the shared local radix-sort phase emitter."""

import numpy as np
import pytest

from repro.data import generate
from repro.machine import MachineConfig
from repro.smp import Team
from repro.sorts.local_sort import local_radix_sort_phases

M16 = MachineConfig.origin2000(n_processors=16, scale=1)


def split(keys, p):
    per = len(keys) // p
    return [keys[i * per : (i + 1) * per] for i in range(p)]


class TestFunctional:
    def test_sorts_each_partition(self):
        keys = generate("random", 16 * 256, 16)
        team = Team(M16, 16)
        parts = split(keys, 16)
        out = local_radix_sort_phases(
            team, "ls", parts, np.full(16, 256), radix=8
        )
        for i, part in enumerate(out):
            assert np.array_equal(part, np.sort(parts[i]))

    def test_uneven_partitions(self):
        rng = np.random.default_rng(0)
        parts = [
            rng.integers(0, 1 << 20, size=s).astype(np.int64)
            for s in (10, 0, 500, 7) + (64,) * 12
        ]
        team = Team(M16, 16)
        counts = np.array([len(p) for p in parts])
        out = local_radix_sort_phases(team, "ls", parts, counts, radix=8)
        for got, src in zip(out, parts):
            assert np.array_equal(got, np.sort(src))

    def test_team_size_mismatch_rejected(self):
        team = Team(M16, 16)
        with pytest.raises(ValueError):
            local_radix_sort_phases(team, "ls", [np.arange(4)], np.array([4]), 8)


class TestCostEmission:
    def test_one_phase_per_pass(self):
        keys = generate("gauss", 16 * 128, 16)
        team = Team(M16, 16)
        local_radix_sort_phases(
            team, "ls", split(keys, 16), np.full(16, 128), radix=8
        )
        pass_phases = [r for r in team.phase_records if r.name.startswith("ls.pass")]
        assert len(pass_phases) == 4  # ceil(31/8)

    def test_busy_scales_with_labeled_counts(self):
        keys = generate("gauss", 16 * 128, 16)
        t1 = Team(M16, 16)
        local_radix_sort_phases(t1, "ls", split(keys, 16), np.full(16, 128), 8)
        t2 = Team(M16, 16)
        local_radix_sort_phases(
            t2, "ls", split(keys, 16), np.full(16, 128 * 64), 8
        )
        assert t2.counters[0].busy_ns == pytest.approx(
            64 * t1.counters[0].busy_ns
        )

    def test_imbalanced_counts_imbalance_clocks(self):
        keys = generate("gauss", 16 * 128, 16)
        counts = np.full(16, 128)
        counts[0] = 128 * 10
        team = Team(M16, 16)
        local_radix_sort_phases(team, "ls", split(keys, 16), counts, 8)
        assert team.clock[0] > 5 * team.clock[1]

    def test_received_cached_cheaper_first_pass(self):
        """SHMEM-delivered (cache-resident) input skips cold misses."""
        keys = generate("gauss", 16 * 4096, 16)
        cold = Team(M16, 16)
        local_radix_sort_phases(
            cold, "ls", split(keys, 16), np.full(16, 4096), 8,
            received_cached=False,
        )
        warm = Team(M16, 16)
        local_radix_sort_phases(
            warm, "ls", split(keys, 16), np.full(16, 4096), 8,
            received_cached=True,
        )
        assert warm.counters[0].lmem_ns < cold.counters[0].lmem_ns
