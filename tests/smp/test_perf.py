"""PerfCounters / PerfReport accounting tests."""

import numpy as np
import pytest

from repro.smp import CATEGORIES, PerfCounters, PerfReport, PhaseRecord


class TestPerfCounters:
    def test_totals(self):
        c = PerfCounters(busy_ns=10, lmem_ns=20, rmem_ns=30, sync_ns=40)
        assert c.total_ns == 100
        assert c.mem_ns == 50
        assert c.as_tuple() == (10, 20, 30, 40)

    def test_add(self):
        a = PerfCounters(busy_ns=1, messages=2)
        b = PerfCounters(busy_ns=3, messages=4, protocol_transactions=5)
        a.add(b)
        assert a.busy_ns == 4
        assert a.messages == 6
        assert a.protocol_transactions == 5


class TestPerfReport:
    def _report(self):
        counters = [
            PerfCounters(busy_ns=100, lmem_ns=10, rmem_ns=5, sync_ns=1),
            PerfCounters(busy_ns=80, lmem_ns=20, rmem_ns=10, sync_ns=6),
        ]
        return PerfReport(2, counters, label="test")

    def test_total_time_is_max(self):
        assert self._report().total_time_ns == 116

    def test_category_matrix(self):
        mat = self._report().category_matrix()
        assert mat.shape == (2, 4)
        assert list(mat[0]) == [100, 10, 5, 1]

    def test_category_means_and_fractions(self):
        rep = self._report()
        means = rep.category_means_ns()
        assert set(means) == set(CATEGORIES)
        assert means["BUSY"] == 90
        fr = rep.category_fractions()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_speedup(self):
        rep = self._report()
        assert rep.speedup_vs(1160) == pytest.approx(10.0)

    def test_speedup_rejects_empty(self):
        rep = PerfReport(1, [PerfCounters()])
        with pytest.raises(ValueError):
            rep.speedup_vs(100)

    def test_mismatched_counters_rejected(self):
        with pytest.raises(ValueError):
            PerfReport(3, [PerfCounters()])

    def test_merged(self):
        merged = self._report().merged()
        assert merged.busy_ns == 180

    def test_phase_summary_accumulates_same_names(self):
        rep = self._report()
        rep.phases.append(PhaseRecord("p", np.array([1.0, 2.0])))
        rep.phases.append(PhaseRecord("p", np.array([3.0, 1.0])))
        rep.phases.append(PhaseRecord("q", np.array([5.0, 0.0])))
        summary = rep.phase_summary()
        assert summary["p"] == 5.0
        assert summary["q"] == 5.0
