"""Team orchestration tests: clocks, barriers, SYNC attribution."""

import numpy as np
import pytest

from repro.machine import MachineConfig
from repro.smp import (
    CollectivePhase,
    PrefixTreePhase,
    Team,
    Transport,
    uniform_compute,
)

M16 = MachineConfig.origin2000(n_processors=16, scale=1)


def make_team(p=16):
    return Team(M16, p)


class TestTeamBasics:
    def test_team_size_validation(self):
        with pytest.raises(ValueError):
            Team(M16, 32)
        with pytest.raises(ValueError):
            Team(M16, 0)

    def test_compute_advances_clocks(self):
        team = make_team()
        team.compute(uniform_compute("c", np.full(16, 500.0)))
        assert np.allclose(team.clock, 500.0)
        assert team.counters[0].busy_ns == 500.0

    def test_phase_records_appended(self):
        team = make_team()
        team.compute(uniform_compute("a", np.zeros(16)))
        team.barrier("b")
        names = [r.name for r in team.phase_records]
        assert names == ["a", "b"]


class TestBarrier:
    def test_barrier_equalizes_clocks(self):
        team = make_team()
        busy = np.zeros(16)
        busy[3] = 10_000.0
        team.compute(uniform_compute("c", busy))
        team.barrier()
        assert np.allclose(team.clock, team.clock[0])
        # Everyone except the laggard waited.
        for i, c in enumerate(team.counters):
            if i != 3:
                assert c.sync_ns >= 10_000.0

    def test_barrier_overhead_charged(self):
        team = make_team()
        team.barrier()
        assert team.clock[0] > 0
        assert team.counters[0].sync_ns > 0

    def test_uncharged_barrier(self):
        team = make_team()
        team.barrier(charge_overhead=False)
        assert team.clock[0] == 0.0

    def test_imbalance_becomes_sync_exactly(self):
        team = make_team()
        busy = np.arange(16, dtype=float) * 1000
        team.compute(uniform_compute("c", busy))
        team.barrier(charge_overhead=False)
        for i, c in enumerate(team.counters):
            assert c.sync_ns == pytest.approx(15_000 - busy[i])


class TestCollectiveAndTree:
    def test_collective_synchronizes_first(self):
        team = make_team()
        busy = np.zeros(16)
        busy[0] = 5000.0
        team.compute(uniform_compute("c", busy))
        team.collective(CollectivePhase("ag", 16, 64.0, Transport.SHMEM_GET))
        assert np.allclose(team.clock, team.clock[0])

    def test_prefix_tree_synchronizes(self):
        team = make_team()
        team.prefix_tree(PrefixTreePhase("t", 16, 256))
        assert np.allclose(team.clock, team.clock[0])

    def test_report_label(self):
        team = Team(M16, 16, label="hello")
        assert team.report().label == "hello"

    def test_elapsed_property(self):
        team = make_team()
        team.compute(uniform_compute("c", np.full(16, 123.0)))
        assert team.elapsed_ns == pytest.approx(123.0)


class TestStackedBarProperty:
    def test_totals_equal_after_final_barrier(self):
        """After a barrier, every processor's BUSY+LMEM+RMEM+SYNC equals
        the wall clock -- the invariant behind the paper's Figure 4/8."""
        team = make_team()
        rng = np.random.default_rng(0)
        for k in range(5):
            team.compute(uniform_compute(f"c{k}", rng.uniform(0, 1e5, 16)))
            team.barrier(f"b{k}")
        totals = [c.total_ns for c in team.counters]
        assert max(totals) == pytest.approx(min(totals), rel=1e-9)
        assert totals[0] == pytest.approx(team.elapsed_ns, rel=1e-9)
