"""Golden regression pinning the BSP machine's superstep accounting.

The BSP zoo member (docs/MACHINES.md) maps the paper's four time
categories onto Valiant's cost model: computation is BUSY (the model has
no memory hierarchy), an exchange charges each processor ``g * h`` as
RMEM where ``h`` is its side of the h-relation, and every barrier ends a
superstep and charges the flat latency ``L`` as SYNC.  For a skew-free
phase sequence the span must therefore satisfy the superstep identity

    BUSY + g*h + L*supersteps == span

exactly -- not approximately: any drift means a cost leaked into the
wrong category or a barrier stopped charging L.
"""

import numpy as np
import pytest

from repro.machine.access import SequentialScan
from repro.machine.config import MachineConfig
from repro.smp.executor import PhaseExecutor
from repro.smp.phases import ComputePhase, ExchangePhase, ProcWork, Transport
from repro.smp.team import Team

P = 4
G = 2.0  # ns per byte of h-relation
L = 5_000.0  # ns per superstep (barrier)


def _machine() -> MachineConfig:
    return MachineConfig.bsp(n_processors=P, g_ns_per_byte=G, l_ns=L)


def _uniform_exchange(bytes_per_pair: float) -> ExchangePhase:
    """A perfectly balanced all-to-all: h = (p-1) * bytes_per_pair for
    every processor, zero local (diagonal) traffic."""
    bytes_m = np.full((P, P), bytes_per_pair, dtype=float)
    np.fill_diagonal(bytes_m, 0.0)
    chunks_m = (bytes_m > 0).astype(float)
    return ExchangePhase("exchange", bytes_m, chunks_m, Transport.MPI_NEW)


class TestSuperstepIdentity:
    def test_golden_two_superstep_run(self):
        """The pinned scenario: compute + barrier + exchange + barrier."""
        busy_ns = 1_000.0
        bytes_per_pair = 256.0
        team = Team(_machine())
        team.compute(
            ComputePhase("local", tuple(ProcWork(busy_ns=busy_ns) for _ in range(P)))
        )
        team.barrier()
        team.exchange(_uniform_exchange(bytes_per_pair))
        team.barrier()

        h = (P - 1) * bytes_per_pair
        supersteps = 2
        expected_span = busy_ns + G * h + L * supersteps
        assert team.elapsed_ns == pytest.approx(expected_span, rel=1e-12)

        # The categories land exactly where the model says: computation
        # in BUSY, g*h in RMEM, L per superstep in SYNC, nothing in LMEM.
        for c in team.counters:
            assert c.busy_ns == pytest.approx(busy_ns, rel=1e-12)
            assert c.rmem_ns == pytest.approx(G * h, rel=1e-12)
            assert c.sync_ns == pytest.approx(L * supersteps, rel=1e-12)
            assert c.lmem_ns == 0.0

    def test_identity_scales_with_g_l_and_supersteps(self):
        """The identity holds for other (g, L) points and barrier counts,
        so it is structural, not a coincidence of the golden numbers."""
        for g, l_ns, n_barriers in [(0.5, 1_000.0, 1), (8.0, 250.0, 3)]:
            team = Team(
                MachineConfig.bsp(n_processors=P, g_ns_per_byte=g, l_ns=l_ns)
            )
            team.exchange(_uniform_exchange(64.0))
            for _ in range(n_barriers):
                team.barrier()
            h = (P - 1) * 64.0
            assert team.elapsed_ns == pytest.approx(
                g * h + l_ns * n_barriers, rel=1e-12
            )

    def test_straggler_wait_is_sync_not_lost(self):
        """With skewed compute, the barrier absorbs the imbalance as SYNC
        and the span is the slowest processor plus L."""
        work = tuple(ProcWork(busy_ns=1_000.0 * (i + 1)) for i in range(P))
        team = Team(_machine())
        team.compute(ComputePhase("skewed", work))
        team.barrier()
        assert team.elapsed_ns == pytest.approx(1_000.0 * P + L, rel=1e-12)
        # Per-processor accounting still sums to the span (the sanitizer's
        # accounting identity, checked here without the sanitizer).
        for c in team.counters:
            total = c.busy_ns + c.lmem_ns + c.rmem_ns + c.sync_ns
            assert total == pytest.approx(team.elapsed_ns, rel=1e-12)


class TestCategoryMapping:
    def test_compute_memory_time_folds_into_busy(self):
        """BSP has no memory hierarchy: access-pattern time that a ccdsm
        machine would split into LMEM lands in BUSY (w), never in LMEM."""
        patterns = ((SequentialScan(4096, 4), None),)
        phase = ComputePhase(
            "scan", tuple(ProcWork(busy_ns=100.0, patterns=patterns) for _ in range(P))
        )
        bsp_out = PhaseExecutor(_machine()).compute(phase)
        assert np.all(bsp_out.lmem == 0.0)
        assert np.all(bsp_out.rmem == 0.0)
        assert np.all(bsp_out.busy > 100.0)  # the scan cost went somewhere

    def test_h_relation_is_max_of_sent_and_received(self):
        """An asymmetric exchange charges g * max(sent, received): the
        heavy receiver pays for its inbound side."""
        bytes_m = np.zeros((P, P))
        bytes_m[1, 0] = 1_000.0  # everyone sends to processor 0
        bytes_m[2, 0] = 1_000.0
        bytes_m[3, 0] = 1_000.0
        chunks_m = (bytes_m > 0).astype(float)
        out = PhaseExecutor(_machine()).exchange(
            ExchangePhase("fan-in", bytes_m, chunks_m, Transport.MPI_NEW)
        )
        assert out.rmem[0] == pytest.approx(G * 3_000.0, rel=1e-12)
        for i in (1, 2, 3):
            assert out.rmem[i] == pytest.approx(G * 1_000.0, rel=1e-12)
