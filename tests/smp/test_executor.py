"""Phase-executor tests: every phase kind, attribution and contention."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import (
    BucketedAppend,
    HomeLocation,
    MachineConfig,
    SequentialScan,
)
from repro.smp import (
    CollectivePhase,
    ComputePhase,
    ExchangePhase,
    PhaseExecutor,
    PrefixTreePhase,
    ProcWork,
    Transport,
    uniform_compute,
)

M16 = MachineConfig.origin2000(n_processors=16, scale=1)


def uniform_exchange(p, bytes_per_pair, chunks_per_pair, transport, **kw):
    b = np.full((p, p), float(bytes_per_pair))
    c = np.full((p, p), float(chunks_per_pair))
    return ExchangePhase("x", b, c, transport, **kw)


class TestComputePhase:
    def test_busy_only(self):
        ex = PhaseExecutor(M16)
        phase = uniform_compute("c", np.full(16, 1000.0))
        out = ex.compute(phase)
        assert np.allclose(out.busy, 1000.0)
        assert np.allclose(out.lmem, 0.0)

    def test_patterns_add_memory_time(self):
        ex = PhaseExecutor(M16)
        pats = [[(SequentialScan(100_000, 4), HomeLocation.local())]] * 16
        out = ex.compute(uniform_compute("c", np.zeros(16), pats))
        assert np.all(out.lmem > 0)
        assert np.all(out.rmem == 0)

    def test_remote_home_charges_rmem(self):
        ex = PhaseExecutor(M16)
        pats = [[(SequentialScan(100_000, 4), HomeLocation.remote(M16, 0))]] * 16
        out = ex.compute(uniform_compute("c", np.zeros(16), pats))
        assert np.all(out.rmem > 0)

    def test_negative_busy_rejected(self):
        with pytest.raises(ValueError):
            ProcWork(busy_ns=-1.0)


class TestPrefixTree:
    def test_scales_with_bins_and_procs(self):
        ex = PhaseExecutor(M16)
        small = ex.prefix_tree(PrefixTreePhase("t", 16, 256))
        big = ex.prefix_tree(PrefixTreePhase("t", 16, 4096))
        assert big.elapsed[0] > small.elapsed[0]

    def test_size_independent_of_keys(self):
        """The CC-SAS histogram cost depends on bins, not key count --
        the paper's explanation for CC-SAS winning small data sets."""
        ex = PhaseExecutor(M16)
        out = ex.prefix_tree(PrefixTreePhase("t", 16, 256))
        assert out.elapsed[0] < 1e6  # well under a millisecond


class TestCollective:
    @pytest.mark.parametrize(
        "transport", [Transport.MPI_NEW, Transport.MPI_SGI, Transport.SHMEM_GET]
    )
    def test_runs(self, transport):
        ex = PhaseExecutor(M16)
        out = ex.collective(CollectivePhase("ag", 16, 1024.0, transport))
        assert np.all(out.elapsed > 0)

    def test_ordering_shmem_cheapest(self):
        ex = PhaseExecutor(M16)
        times = {
            t: ex.collective(CollectivePhase("ag", 16, 1024.0, t)).elapsed[0]
            for t in (Transport.SHMEM_GET, Transport.MPI_NEW, Transport.MPI_SGI)
        }
        assert (
            times[Transport.SHMEM_GET]
            < times[Transport.MPI_NEW]
            < times[Transport.MPI_SGI]
        )

    def test_ccsas_rejected(self):
        ex = PhaseExecutor(M16)
        with pytest.raises(ValueError):
            ex.collective(CollectivePhase("ag", 16, 10.0, Transport.CCSAS_SCATTERED))

    def test_fixed_cost_floor(self):
        """Zero-byte collective still costs (the paper's fixed cost)."""
        ex = PhaseExecutor(M16)
        out = ex.collective(CollectivePhase("ag", 16, 0.0, Transport.SHMEM_GET))
        assert out.elapsed[0] > 100_000  # ~p * 62.5us


class TestExchangeValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ExchangePhase(
                "x", np.zeros((4, 4)), np.zeros((5, 5)), Transport.SHMEM_GET
            )

    def test_nonzero_bytes_need_chunks(self):
        with pytest.raises(ValueError):
            ExchangePhase(
                "x", np.ones((4, 4)), np.zeros((4, 4)), Transport.SHMEM_GET
            )

    def test_negative_traffic(self):
        with pytest.raises(ValueError):
            ExchangePhase(
                "x", -np.ones((4, 4)), np.ones((4, 4)), Transport.SHMEM_GET
            )

    def test_too_many_procs_for_machine(self):
        ex = PhaseExecutor(M16)
        with pytest.raises(ValueError):
            ex.exchange(uniform_exchange(32, 100, 1, Transport.SHMEM_GET))


class TestExchangeTransports:
    @pytest.mark.parametrize(
        "transport",
        [
            Transport.CCSAS_SCATTERED,
            Transport.CCSAS_BULK,
            Transport.CCSAS_READ,
            Transport.MPI_NEW,
            Transport.MPI_SGI,
            Transport.SHMEM_GET,
        ],
    )
    def test_all_transports_run(self, transport):
        ex = PhaseExecutor(M16)
        out = ex.exchange(uniform_exchange(16, 4096, 2, transport))
        assert np.all(out.elapsed >= 0)
        assert out.elapsed.max() > 0

    def test_zero_traffic_costs_nothing(self):
        ex = PhaseExecutor(M16)
        out = ex.exchange(uniform_exchange(16, 0, 0, Transport.SHMEM_GET))
        assert np.allclose(out.elapsed, 0.0)

    def test_mpi_sgi_slower_than_new(self):
        ex = PhaseExecutor(M16)
        new = ex.exchange(uniform_exchange(16, 4096, 4, Transport.MPI_NEW))
        sgi = ex.exchange(uniform_exchange(16, 4096, 4, Transport.MPI_SGI))
        assert sgi.elapsed.max() > new.elapsed.max()

    def test_shmem_faster_than_mpi(self):
        ex = PhaseExecutor(M16)
        mpi = ex.exchange(uniform_exchange(16, 4096, 4, Transport.MPI_NEW))
        shm = ex.exchange(uniform_exchange(16, 4096, 4, Transport.SHMEM_GET))
        assert shm.elapsed.max() < mpi.elapsed.max()

    def test_mpi_sync_exceeds_shmem_sync(self):
        """The 1-deep channel handshake shows up as MPI SYNC time."""
        ex = PhaseExecutor(M16)
        mpi = ex.exchange(uniform_exchange(16, 8192, 8, Transport.MPI_NEW))
        shm = ex.exchange(uniform_exchange(16, 8192, 8, Transport.SHMEM_GET))
        assert mpi.sync.mean() > shm.sync.mean()

    def test_scattered_worse_than_bulk_at_load(self):
        """The CC-SAS collapse: scattered writes cost far more than the
        same bytes moved as buffered chunks."""
        ex = PhaseExecutor(M16)
        big = 1 << 20
        scat = ex.exchange(uniform_exchange(16, big, 64, Transport.CCSAS_SCATTERED))
        bulk = ex.exchange(uniform_exchange(16, big, 64, Transport.CCSAS_BULK))
        assert scat.rmem.max() > 2 * bulk.rmem.max()

    def test_scattered_contention_grows_with_load(self):
        ex = PhaseExecutor(M16)
        lo = ex.exchange(uniform_exchange(16, 1 << 10, 4, Transport.CCSAS_SCATTERED))
        hi = ex.exchange(uniform_exchange(16, 1 << 20, 4, Transport.CCSAS_SCATTERED))
        # Per-byte cost rises under load (NACK/retry degradation).
        assert hi.rmem.max() / (1 << 20) > lo.rmem.max() / (1 << 10)

    def test_messages_counted(self):
        ex = PhaseExecutor(M16)
        out = ex.exchange(uniform_exchange(16, 4096, 4, Transport.MPI_NEW))
        assert out.messages.sum() == pytest.approx(16 * 15 * 4)

    def test_start_offsets_shift_completion(self):
        ex = PhaseExecutor(M16)
        offsets = np.zeros(16)
        offsets[0] = 1e6  # proc 0 arrives late
        phase = uniform_exchange(16, 4096, 2, Transport.MPI_NEW)
        out = ex.exchange(phase, offsets)
        # Laggard's partners wait for it: sync grows somewhere.
        assert out.sync.sum() > 0

    def test_protocol_tx_only_for_ccsas_writes(self):
        ex = PhaseExecutor(M16)
        scat = ex.exchange(uniform_exchange(16, 4096, 2, Transport.CCSAS_SCATTERED))
        read = ex.exchange(uniform_exchange(16, 4096, 2, Transport.CCSAS_READ))
        assert scat.protocol_tx.sum() > 0
        assert read.protocol_tx.sum() == 0

    @given(
        log_bytes=st.integers(6, 18),
        chunks=st.integers(1, 16),
        transport=st.sampled_from(list(Transport)),
    )
    @settings(max_examples=30, deadline=None)
    def test_outcome_invariants(self, log_bytes, chunks, transport):
        ex = PhaseExecutor(M16)
        out = ex.exchange(
            uniform_exchange(16, 1 << log_bytes, chunks, transport)
        )
        for arr in (out.busy, out.lmem, out.rmem, out.sync):
            assert np.all(arr >= 0)
        assert np.all(np.isfinite(out.elapsed))
