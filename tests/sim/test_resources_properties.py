"""Property tests for the DES resource layer: arbitrary schedules pushed
through Resource and Channel never violate capacity, FIFO grant order or
clock monotonicity -- with the runtime sanitizer auditing every grant,
release and buffer operation as the schedule plays out."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.resources import Channel, Resource
from repro.verify import Sanitizer, use_sanitizer


@given(
    capacity=st.integers(min_value=1, max_value=4),
    jobs=st.lists(
        st.tuples(
            st.floats(0.0, 10.0),  # arrival delay
            st.floats(0.0, 10.0),  # hold time
        ),
        min_size=1,
        max_size=30,
    ),
)
@settings(max_examples=50, deadline=None)
def test_resource_schedules_grant_fifo_within_capacity(capacity, jobs):
    san = Sanitizer()
    with use_sanitizer(san):
        sim = Simulator()
        res = Resource(sim, capacity=capacity, name="r")
        grant_order = []

        def job(idx, arrive, hold):
            yield arrive
            yield res.acquire()
            grant_order.append(idx)
            try:
                yield hold
            finally:
                res.release()

        for i, (arrive, hold) in enumerate(jobs):
            sim.process(job(i, arrive, hold), name=f"job{i}")
        sim.run()

    assert not san.violations
    assert sorted(grant_order) == list(range(len(jobs)))
    assert res.in_use == 0 and res.queue_length == 0
    assert res.total_acquisitions == len(jobs)
    # The sanitizer audited every grant and release.
    assert san.checks["resource.fifo-grant"] == len(jobs)
    assert san.checks["resource.idle-release"] == len(jobs)
    assert san.checks["resource.mutual-exclusion"] == len(jobs)


@given(
    capacity=st.integers(min_value=1, max_value=3),
    n_items=st.integers(min_value=1, max_value=20),
    put_delays=st.lists(st.floats(0.0, 5.0), min_size=20, max_size=20),
    get_delays=st.lists(st.floats(0.0, 5.0), min_size=20, max_size=20),
)
@settings(max_examples=50, deadline=None)
def test_channel_schedules_deliver_in_order_within_capacity(
    capacity, n_items, put_delays, get_delays
):
    san = Sanitizer()
    with use_sanitizer(san):
        sim = Simulator()
        ch = Channel(sim, capacity=capacity, name="c")
        received = []

        def producer():
            for i in range(n_items):
                yield put_delays[i]
                yield ch.put(i)

        def consumer():
            for i in range(n_items):
                yield get_delays[i]
                item = yield ch.get()
                received.append(item)
                assert ch.occupancy <= ch.capacity

        sim.process(producer(), name="producer")
        sim.process(consumer(), name="consumer")
        sim.run()

    assert not san.violations
    assert received == list(range(n_items))  # FIFO delivery
    assert ch.occupancy == 0 and ch.blocked_senders == 0
    assert ch.messages_passed == n_items
    assert san.checks["channel.occupancy"] == 2 * n_items
    # Every step the schedule took was clock-monotonicity checked.
    assert san.checks["sim.clock-monotone"] == sim.events_processed


@given(
    delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=40),
)
@settings(max_examples=50, deadline=None)
def test_random_timeout_storm_is_clock_monotone(delays):
    san = Sanitizer()
    with use_sanitizer(san):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.timeout(d).add_callback(lambda ev, d=d: fired.append(sim.now))
        sim.run()
    assert not san.violations
    assert fired == sorted(fired)
    assert san.checks["sim.clock-monotone"] == sim.events_processed
