"""DES kernel tests: ordering, determinism, processes, resources, channels."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Channel, Resource, SimError, Simulator, Trace


class TestEventsAndTimeouts:
    def test_timeout_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.timeout(5.0).add_callback(lambda ev: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_event_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimError):
            ev.succeed()

    def test_negative_delay_rejected(self):
        with pytest.raises(SimError):
            Simulator().timeout(-1.0)

    def test_callback_on_triggered_event_fires(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(42)
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == [42]

    def test_fifo_tiebreak_at_same_time(self):
        sim = Simulator()
        order = []
        for i in range(10):
            sim.timeout(1.0, i).add_callback(lambda ev: order.append(ev.value))
        sim.run()
        assert order == list(range(10))

    def test_run_until(self):
        sim = Simulator()
        sim.timeout(10.0)
        final = sim.run(until=5.0)
        assert final == 5.0
        assert not sim.idle

    def test_all_of(self):
        sim = Simulator()
        evs = [sim.timeout(t, t) for t in (3.0, 1.0, 2.0)]
        done = []
        sim.all_of(evs).add_callback(lambda ev: done.append((sim.now, ev.value)))
        sim.run()
        assert done == [(3.0, [3.0, 1.0, 2.0])]

    def test_all_of_empty(self):
        sim = Simulator()
        done = []
        sim.all_of([]).add_callback(lambda ev: done.append(sim.now))
        sim.run()
        assert done == [0.0]


class TestProcesses:
    def test_sequence_of_delays(self):
        sim = Simulator()
        log = []

        def worker():
            yield 2.0
            log.append(sim.now)
            yield 3.0
            log.append(sim.now)
            return "done"

        proc = sim.process(worker())
        sim.run()
        assert log == [2.0, 5.0]
        assert proc.triggered and proc.value == "done"

    def test_process_waits_for_event(self):
        sim = Simulator()
        gate = sim.event()
        log = []

        def waiter():
            val = yield gate
            log.append((sim.now, val))

        def opener():
            yield 7.0
            gate.succeed("open")

        sim.process(waiter())
        sim.process(opener())
        sim.run()
        assert log == [(7.0, "open")]

    def test_process_joins_process(self):
        sim = Simulator()
        log = []

        def child():
            yield 4.0
            return 99

        def parent():
            result = yield sim.process(child())
            log.append((sim.now, result))

        sim.process(parent())
        sim.run()
        assert log == [(4.0, 99)]

    def test_yield_none_resumes_same_time(self):
        sim = Simulator()
        log = []

        def p():
            yield None
            log.append(sim.now)

        sim.process(p())
        sim.run()
        assert log == [0.0]

    def test_bad_yield_type_raises(self):
        sim = Simulator()

        def p():
            yield "nonsense"

        sim.process(p())
        with pytest.raises(SimError):
            sim.run()

    def test_runaway_protection(self):
        sim = Simulator()

        def forever():
            while True:
                yield 1.0

        sim.process(forever())
        with pytest.raises(SimError):
            sim.run(max_events=100)

    @given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_total_time_is_sum_of_delays(self, delays):
        sim = Simulator()

        def p():
            for d in delays:
                yield d

        sim.process(p())
        assert sim.run() == pytest.approx(sum(delays))


class TestResource:
    def test_mutual_exclusion_serializes(self):
        sim = Simulator()
        res = Resource(sim, capacity=1, name="ctrl")
        spans = []

        def user(uid):
            yield res.acquire()
            start = sim.now
            yield 10.0
            res.release()
            spans.append((uid, start, sim.now))

        for i in range(3):
            sim.process(user(i))
        sim.run()
        assert [s[1:] for s in sorted(spans)] == [(0, 10), (10, 20), (20, 30)]
        assert res.total_acquisitions == 3

    def test_capacity_two_overlaps(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)

        def user():
            yield from res.use(10.0)

        for _ in range(4):
            sim.process(user())
        assert sim.run() == 20.0

    def test_release_idle_raises(self):
        sim = Simulator()
        with pytest.raises(SimError):
            Resource(sim).release()

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimError):
            Resource(Simulator(), capacity=0)


class TestChannel:
    def test_one_deep_blocks_second_put(self):
        """The MPI 1-deep pair buffer: sender stalls until receiver drains."""
        sim = Simulator()
        ch = Channel(sim, capacity=1)
        sent, received = [], []

        def sender():
            for k in range(3):
                yield ch.put(k)
                sent.append((k, sim.now))
                yield 1.0

        def receiver():
            for _ in range(3):
                yield 10.0  # slow consumer
                msg = yield ch.get()
                received.append((msg, sim.now))

        sim.process(sender())
        sim.process(receiver())
        sim.run()
        # First put immediate; subsequent puts gated by the slow receiver.
        assert sent[0][1] == 0.0
        assert sent[1][1] == pytest.approx(10.0)
        assert sent[2][1] == pytest.approx(20.0)
        assert [m for m, _ in received] == [0, 1, 2]

    def test_deeper_channel_decouples(self):
        sim = Simulator()
        ch = Channel(sim, capacity=3)
        sent = []

        def sender():
            for k in range(3):
                yield ch.put(k)
                sent.append(sim.now)

        sim.process(sender())
        sim.run()
        assert sent == [0.0, 0.0, 0.0]
        assert ch.occupancy == 3

    def test_get_before_put(self):
        sim = Simulator()
        ch = Channel(sim, capacity=1)
        got = []

        def receiver():
            msg = yield ch.get()
            got.append((msg, sim.now))

        def sender():
            yield 5.0
            yield ch.put("hello")

        sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert got == [("hello", 5.0)]

    def test_fifo_order(self):
        sim = Simulator()
        ch = Channel(sim, capacity=10)
        for k in range(5):
            ch.put(k)
        order = []

        def receiver():
            for _ in range(5):
                msg = yield ch.get()
                order.append(msg)

        sim.process(receiver())
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestTrace:
    def test_causality(self):
        sim = Simulator()
        trace = Trace(sim)

        def p(name):
            trace.log(name, "start")
            yield 5.0
            trace.log(name, "end")

        sim.process(p("a"))
        sim.process(p("b"))
        sim.run()
        assert trace.is_causal()
        assert len(trace.by_actor("a")) == 2
        assert len(trace.by_action("start")) == 2

    def test_format_and_disable(self):
        sim = Simulator()
        trace = Trace(sim, enabled=False)
        trace.log("x", "y")
        assert trace.records == []
        trace.enabled = True
        trace.log("x", "y", 1)
        assert "x" in trace.format()
