"""The expanded differential oracle's axes: machine-zoo and workload
coverage counters, negative (typed-rejection) cells, and the guarantee
that a seeded wrong sort is *caught* on every new axis -- an oracle that
cannot fail is not an oracle."""

import io

import numpy as np
import pytest

from repro.data.workloads import Workload
from repro.verify import VerifyError, Sanitizer, use_sanitizer
from repro.verify import differential
from repro.verify.differential import CheckCase, _case_workload, _run_case

N, P = 16 * 64, 16


def _corrupted(reference: Workload) -> Workload:
    """The reference with two entries swapped: what a wrong sort returns."""
    keys = reference.keys.copy()
    keys[0], keys[-1] = keys[-1], keys[0].copy()
    payload = None if reference.payload is None else reference.payload.copy()
    return Workload(reference.kind, keys, payload)


class TestWrongSortCaughtPerAxis:
    """Seed a wrong result on each new axis and assert the oracle flags
    it.  (Corrupting the oracle is equivalent to corrupting the sort:
    the comparison is symmetric.)"""

    @pytest.mark.parametrize("machine", differential.NEW_MACHINES)
    def test_on_each_new_machine(self, machine):
        case = CheckCase(
            "sim", "sample", "gauss", N, P,
            differential.machine_model(machine), machine=machine,
        )
        workload, reference = _case_workload(case)
        with pytest.raises(VerifyError, match="sorted-permutation"):
            _run_case(case, "sim", workload, _corrupted(reference))

    @pytest.mark.parametrize("workload_kind", differential.NEW_WORKLOADS)
    def test_on_each_new_workload(self, workload_kind):
        case = CheckCase(
            "sim", "sample", "gauss", N, P, "shmem", workload=workload_kind,
        )
        workload, reference = _case_workload(case)
        with pytest.raises(VerifyError, match="sorted-permutation"):
            _run_case(case, "sim", workload, _corrupted(reference))

    def test_payload_mismatch_alone_is_caught(self):
        """Right keys, wrong payload permutation: still a failure."""
        case = CheckCase(
            "sim", "sample", "gauss", N, P, "shmem", workload="payload",
        )
        workload, reference = _case_workload(case)
        assert reference.payload is not None
        bad = Workload(
            reference.kind, reference.keys, reference.payload[::-1].copy()
        )
        with pytest.raises(VerifyError, match="payload"):
            _run_case(case, "sim", workload, bad)


class TestNegativeCells:
    def test_expected_rejection_passes(self):
        case = CheckCase(
            "sim", "radix", "gauss", N, P, "shmem",
            machine="ap1000", expect_error="UnsupportedTransportError",
        )
        workload, reference = _case_workload(case)
        assert _run_case(case, "sim", workload, reference) is None

    def test_completing_without_the_error_fails(self):
        """A negative cell that sorts successfully is a broken gate."""
        case = CheckCase(
            "sim", "radix", "gauss", N, P, "shmem",
            expect_error="UnsupportedTransportError",  # but origin2000 is fine
        )
        workload, reference = _case_workload(case)
        with pytest.raises(VerifyError, match="without raising"):
            _run_case(case, "sim", workload, reference)

    def test_wrong_error_type_fails(self):
        case = CheckCase(
            "sim", "radix", "gauss", N, P, "shmem",
            machine="ap1000", expect_error="UncalibratedMachineError",
        )
        workload, reference = _case_workload(case)
        with pytest.raises(VerifyError, match="instead of"):
            _run_case(case, "sim", workload, reference)

    def test_predict_rejection_cell_passes(self):
        case = CheckCase(
            "predict", "radix", "gauss", N, P, "shmem",
            machine="bsp", expect_error="UncalibratedMachineError",
        )
        workload, reference = _case_workload(case)
        assert _run_case(case, "predict", workload, reference) is None


class TestAxisCoverage:
    def test_counters_accumulate_per_axis(self):
        san = Sanitizer()
        case = CheckCase(
            "sim", "sample", "gauss", N, P, "shmem",
            machine="multicore", workload="f64",
        )
        with use_sanitizer(san):
            workload, reference = _case_workload(case)
            _run_case(case, "sim", workload, reference)
        assert san.checks["axis.backend.sim"] == 1
        assert san.checks["axis.machine.multicore"] == 1
        assert san.checks["axis.workload.f64"] == 1

    def test_failed_case_does_not_count(self):
        """Coverage must mean *evaluated and passed the comparison*, so a
        corrupted run can't inflate the counters."""
        san = Sanitizer()
        case = CheckCase("sim", "sample", "gauss", N, P, "shmem")
        with use_sanitizer(san):
            workload, reference = _case_workload(case)
            with pytest.raises(VerifyError):
                _run_case(case, "sim", workload, _corrupted(reference))
        assert san.checks["axis.backend.sim"] == 0

    def test_required_axis_coverage_spans_all_axes(self):
        required = set(differential.REQUIRED_AXIS_COVERAGE)
        for machine in differential.ALL_MACHINES:
            assert f"axis.machine.{machine}" in required
        for kind in differential.ALL_WORKLOADS:
            assert f"axis.workload.{kind}" in required
        assert "axis.negative.UnsupportedTransportError" in required
        assert "axis.negative.UncalibratedMachineError" in required

    def test_filtered_sweep_passes_without_full_coverage(self):
        """--machine/--workload filters cannot cover every axis; the
        coverage floor must not fire on them."""
        out = io.StringIO()
        rc = differential.run_check(
            small=True, native=False, stream=out, backend="sim",
            machine="bsp", workload="u64",
        )
        assert rc == 0
        assert "COVERAGE FAILURE" not in out.getvalue()

    def test_unknown_filters_rejected(self):
        with pytest.raises(ValueError, match="unknown machine"):
            differential.run_check(small=True, machine="cray")
        with pytest.raises(ValueError, match="unknown workload"):
            differential.run_check(small=True, workload="utf8")

    def test_empty_selection_fails(self):
        out = io.StringIO()
        rc = differential.run_check(
            small=True, native=True, stream=out, backend="native",
            machine="ap1000",  # native cells never run on zoo machines
        )
        assert rc == 1
        assert "nothing to run" in out.getvalue()


class TestWorkloadOracle:
    @pytest.mark.parametrize("kind", differential.ALL_WORKLOADS)
    def test_reference_is_sorted_permutation(self, kind):
        case = CheckCase("sim", "sample", "gauss", N, P, "shmem", workload=kind)
        workload, reference = _case_workload(case)
        assert len(reference.keys) == len(workload.keys)
        ref_sorted = np.sort(workload.keys)
        if np.issubdtype(workload.keys.dtype, np.floating):
            assert np.array_equal(reference.keys, ref_sorted, equal_nan=True)
        else:
            assert np.array_equal(reference.keys, ref_sorted)
        if kind == "payload":
            assert reference.payload is not None
            order = np.argsort(workload.keys, kind="stable")
            assert np.array_equal(reference.payload, workload.payload[order])
