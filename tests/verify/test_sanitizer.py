"""Negative tests: every sanitizer invariant catches a deliberately
injected corruption with a VerifyError naming it, and clean runs pass
with nonzero check counters."""

import heapq

import numpy as np
import pytest

from repro.core.api import sort
from repro.data import generate
from repro.machine.costs import DEFAULT_COSTS
from repro.sim.engine import SimError, Simulator
from repro.sim.resources import Channel, Resource
from repro.smp.perf import PerfCounters, PerfReport, PhaseRecord
from repro.smp.team import Team
from repro.sorts.radix import default_machine
from repro.verify import (
    Sanitizer,
    VerifyError,
    check_comm_conservation,
    check_report,
    use_sanitizer,
)

pytestmark = pytest.mark.no_sanitize  # tests install their own sanitizer


def expect_violation(invariant: str):
    # Match the invariant name in the bracketed message prefix; allow
    # sub-invariant suffixes like comm.key-conservation.send.
    return pytest.raises(VerifyError, match=rf"\[{invariant}")


# ----------------------------------------------------------------------
# Clean runs
# ----------------------------------------------------------------------
def test_sanitized_sort_is_clean_and_covered(sanitizer):
    keys = generate("gauss", 1024, 16)
    result = sort(keys, algorithm="radix", model="mpi-new", n_procs=16)
    assert np.array_equal(result.sorted_keys, np.sort(keys))
    assert not sanitizer.violations
    for invariant in (
        "sim.clock-monotone",
        "resource.mutual-exclusion",
        "resource.fifo-grant",
        "resource.idle-release",
        "channel.occupancy",
        "exchange.drained",
        "team.phase-outcome",
        "team.barrier-epoch",
        "comm.key-conservation",
        "report.accounting-identity",
    ):
        assert sanitizer.checks[invariant] > 0, invariant


def test_verify_error_is_a_sim_error_and_names_invariant():
    err = VerifyError("some.invariant", "what went wrong", detail=3)
    assert isinstance(err, SimError)
    assert err.invariant == "some.invariant"
    assert "[some.invariant]" in str(err) and "what went wrong" in str(err)
    assert err.context == {"detail": 3}


def test_sanitizer_records_violations():
    san = Sanitizer()
    with pytest.raises(VerifyError):
        san.violation("x.y", "boom")
    assert [v.invariant for v in san.violations] == ["x.y"]


# ----------------------------------------------------------------------
# DES kernel causality
# ----------------------------------------------------------------------
def test_clock_monotone_violation_caught(sanitizer):
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0
    # A buggy scheduler bypassing _schedule() plants an event in the past.
    heapq.heappush(sim._queue, (1.0, sim._seq + 1, lambda v: None, None))
    with expect_violation("sim.clock-monotone"):
        sim.step()


def test_schedule_past_violation_caught(sanitizer):
    sim = Simulator()
    sim.now = 5.0
    with expect_violation("sim.schedule-past"):
        sim._schedule(1.0, lambda v: None, None)


def test_event_refire_violation_caught(sanitizer):
    sim = Simulator()
    ev = sim.event("once")
    ev.succeed()
    with expect_violation("sim.event-refire"):
        ev.succeed()
    assert sanitizer.violations[-1].invariant == "sim.event-refire"


def test_late_resume_violation_caught(sanitizer):
    sim = Simulator()

    def body():
        yield 1.0

    proc = sim.process(body(), name="p0")
    sim.run()
    assert proc.triggered
    with expect_violation("sim.event-after-complete"):
        proc._resume(None)


# ----------------------------------------------------------------------
# Resources and channels
# ----------------------------------------------------------------------
def test_idle_release_violation_caught(sanitizer):
    sim = Simulator()
    res = Resource(sim, capacity=1, name="hub")
    res.acquire()
    res.release()
    with expect_violation("resource.idle-release"):
        res.release()


def test_fifo_grant_violation_caught(sanitizer):
    sim = Simulator()
    res = Resource(sim, capacity=1, name="link")
    res.acquire()  # ticket 0, granted
    res.acquire()  # ticket 1, waits
    res.acquire()  # ticket 2, waits
    res._waiters.reverse()  # corrupt the queue: LIFO instead of FIFO
    with expect_violation("resource.fifo-grant"):
        res.release()


def test_mutual_exclusion_violation_caught(sanitizer):
    sim = Simulator()
    res = Resource(sim, capacity=1, name="lock")
    res.acquire()
    # A buggy grant path that forgets to check occupancy:
    res.in_use += 1
    with expect_violation("resource.mutual-exclusion"):
        res._grant(1)


def test_channel_occupancy_violation_caught(sanitizer):
    sim = Simulator()
    ch = Channel(sim, capacity=1, name="p0->p1")
    ch._items.extend(["a", "b"])  # corrupt: two messages in a 1-deep buffer
    with expect_violation("channel.occupancy"):
        ch.get()


def test_exchange_drained_violation_caught(sanitizer):
    sim = Simulator()
    sim.timeout(1.0)  # queued work the "finished" exchange never ran
    with expect_violation("exchange.drained"):
        sanitizer.on_exchange_drained(sim, (), "permute")


def test_exchange_drained_flags_stuck_channel(sanitizer):
    sim = Simulator()
    ch = Channel(sim, capacity=1, name="p0->p1")
    ch.put("undelivered")
    with expect_violation("exchange.drained"):
        sanitizer.on_exchange_drained(sim, (ch,), "permute")


# ----------------------------------------------------------------------
# SPMD phase runtime
# ----------------------------------------------------------------------
def _team(p=4):
    return Team(default_machine(p), p, DEFAULT_COSTS, label="test")


def test_barrier_epoch_violation_caught(sanitizer):
    team = _team()
    team.barrier("ok")
    team.epochs[0] += 1  # processor 0 "skips ahead" one barrier
    with expect_violation("team.barrier-epoch"):
        team.barrier("broken")


def test_phase_outcome_negative_time_caught(sanitizer):
    # ProcWork rejects negative busy at construction, so forge the
    # executor-level outcome a buggy phase model could produce.
    from repro.smp.executor import PhaseOutcome

    team = _team()
    bad = PhaseOutcome(team.n_procs)
    bad.sync[1] = -10.0
    with expect_violation("team.phase-outcome"):
        team._apply("bad", bad)


def test_phase_outcome_wrong_width_caught(sanitizer):
    from repro.smp.executor import PhaseOutcome

    team = _team()
    with expect_violation("team.phase-outcome"):
        team._apply("bad", PhaseOutcome(team.n_procs + 1))


# ----------------------------------------------------------------------
# Accounting and conservation checkers
# ----------------------------------------------------------------------
def _report(busy=100.0, span=100.0, p=2):
    return PerfReport(
        n_procs=p,
        counters=[PerfCounters(busy_ns=busy) for _ in range(p)],
        phases=[PhaseRecord("phase", np.full(p, span))],
        label="test",
    )


def test_check_report_accepts_consistent_report():
    check_report(_report())


def test_accounting_identity_violation_caught():
    with expect_violation("report.accounting-identity"):
        check_report(_report(busy=100.0, span=90.0))


def test_report_negative_category_caught():
    with expect_violation("report.category-sane"):
        check_report(_report(busy=-1.0, span=-1.0))


def test_report_phase_shape_caught():
    bad = PerfReport(
        n_procs=2,
        counters=[PerfCounters(), PerfCounters()],
        phases=[PhaseRecord("phase", np.zeros(3))],
    )
    with expect_violation("report.phase-shape"):
        check_report(bad)


def test_comm_conservation_accepts_balanced_matrix():
    b = np.full((2, 2), 10.0)
    check_comm_conservation(b, np.ones((2, 2)), row_bytes=20.0, col_bytes=20.0)


def test_comm_send_conservation_violation_caught():
    b = np.full((2, 2), 10.0)
    b[0, 1] += 5.0  # corrupt: processor 0 ships bytes it does not own
    with expect_violation(r"comm.key-conservation.send"):
        check_comm_conservation(
            b, np.ones((2, 2)), row_bytes=20.0, col_bytes=None, where="radix"
        )


def test_comm_recv_conservation_violation_caught():
    b = np.full((2, 2), 10.0)
    b[0, 1] += 5.0
    with expect_violation(r"comm.key-conservation.recv"):
        check_comm_conservation(
            b, np.ones((2, 2)), row_bytes=None, col_bytes=20.0, where="radix"
        )


def test_comm_chunkless_traffic_caught():
    b = np.full((2, 2), 10.0)
    chunks = np.ones((2, 2))
    chunks[1, 0] = 0.0  # bytes flow 1->0 in zero chunks
    with expect_violation("comm.chunkless-traffic"):
        check_comm_conservation(b, chunks)


def test_comm_shape_mismatch_caught():
    with expect_violation("comm.matrix-shape"):
        check_comm_conservation(np.zeros((2, 2)), np.zeros((3, 3)))


def test_corrupted_comm_histogram_caught_in_sort(monkeypatch):
    """End to end: a bug planted upstream of the comm-matrix builder (a
    histogram that invents keys) is caught by the sanitizer's conservation
    check during an otherwise normal run."""
    from repro.sorts import common, radix

    real = common.proc_histograms

    def corrupted(digits, p, r):
        hist = real(digits, p, r).copy()
        hist[0, 0] += 3  # processor 0 "counts" keys it does not hold
        return hist

    monkeypatch.setattr(radix, "proc_histograms", corrupted)
    keys = generate("gauss", 512, 8)
    with use_sanitizer(Sanitizer()):
        with expect_violation(r"comm.key-conservation"):
            sort(keys, algorithm="radix", model="shmem", n_procs=8)
