"""The differential oracle: grid construction, clean sweeps, and failure
reporting (a corrupted result or unplugged invariant must flip the exit
code)."""

import io

import numpy as np
import pytest

from repro.verify import VerifyError, default_grid, run_check
from repro.verify import differential


def test_default_grid_small_covers_models_and_backends():
    cases = default_grid(small=True)
    dists = {c.distribution for c in cases}
    assert dists == set(differential.SMALL_DISTRIBUTIONS)
    for dist in dists:
        sub = [c for c in cases if c.distribution == dist]
        assert {c.model for c in sub if c.algorithm == "radix" and c.backend == "sim"} \
            == set(differential.RADIX_MODELS)
        assert {c.model for c in sub if c.algorithm == "sample" and c.backend == "sim"} \
            == set(differential.SAMPLE_MODELS)
        assert {c.algorithm for c in sub if c.backend == "native"} \
            == {"radix", "sample"}


def test_default_grid_full_covers_all_paper_distributions():
    from repro.data import PAPER_ORDER

    cases = default_grid(small=False, native=False)
    assert {c.distribution for c in cases} == set(PAPER_ORDER)
    # Positive cells are simulated; the negative cells additionally
    # exercise the predictor's typed rejection of uncalibrated machines.
    assert all(c.backend == "sim" for c in cases if not c.expect_error)


def test_default_grid_covers_zoo_and_workload_axes():
    cases = default_grid(small=True, native=True)
    assert {c.machine for c in cases} == set(differential.ALL_MACHINES)
    assert {c.workload for c in cases} == set(differential.ALL_WORKLOADS)
    # Every new machine runs every workload kind under both algorithms.
    for machine in differential.NEW_MACHINES:
        sub = [c for c in cases if c.machine == machine and not c.expect_error]
        assert {c.workload for c in sub} == set(differential.ALL_WORKLOADS)
        assert {c.algorithm for c in sub} == {"radix", "sample"}
    # The native backend sorts every new workload kind too.
    native = [c for c in cases if c.backend == "native"]
    assert set(differential.NEW_WORKLOADS) <= {c.workload for c in native}
    # Typed-rejection negatives for both error families.
    negatives = {c.expect_error for c in cases if c.expect_error}
    assert negatives == {
        "UnsupportedTransportError", "UncalibratedMachineError",
    }


def test_run_check_small_sim_only_passes():
    out = io.StringIO()
    assert run_check(small=True, native=False, stream=out) == 0
    text = out.getvalue()
    assert "0 failed" in text
    assert "COVERAGE FAILURE" not in text


def test_run_check_reports_coverage_failure(monkeypatch):
    monkeypatch.setattr(
        differential,
        "REQUIRED_COVERAGE",
        differential.REQUIRED_COVERAGE + ("bogus.never-evaluated",),
    )
    # One distribution is enough to exercise the coverage accounting.
    monkeypatch.setattr(differential, "SMALL_DISTRIBUTIONS", ("gauss",))
    out = io.StringIO()
    assert run_check(small=True, native=False, stream=out) == 1
    assert "bogus.never-evaluated" in out.getvalue()


def test_run_check_flags_wrong_results(monkeypatch):
    def sabotaged(case, backend, oracle, keys):
        raise VerifyError(
            "differential.sorted-permutation", f"{case.label}: sabotaged"
        )

    monkeypatch.setattr(differential, "_run_case", sabotaged)
    monkeypatch.setattr(differential, "SMALL_DISTRIBUTIONS", ("gauss",))
    out = io.StringIO()
    assert run_check(small=True, native=False, stream=out) == 1
    assert "differential.sorted-permutation" in out.getvalue()


def test_run_case_rejects_corrupted_oracle():
    from repro.data import generate
    from repro.data.workloads import Workload

    keys = generate("gauss", 256, 4)
    workload = Workload("u32", keys)
    wrong = Workload("u32", np.sort(keys)[::-1].copy())
    case = differential.CheckCase("sim", "radix", "gauss", 256, 4, "shmem")
    with pytest.raises(VerifyError, match=r"\[differential.sorted-permutation\]"):
        differential._run_case(case, "sim", workload, wrong)


def test_cli_check_small_sim_only(capsys):
    from repro.__main__ import main

    assert main(["check", "--small", "--no-native"]) == 0
    assert "0 failed" in capsys.readouterr().out
