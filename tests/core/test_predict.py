"""Closed-form predictor tests: formula vs full simulation."""

import pytest

from repro.core.experiment import ExperimentRunner, RunSpec
from repro.core.predict import predict_speedup, predict_time


class TestPredictValidation:
    def test_rejects_bad_algorithm(self):
        with pytest.raises(ValueError):
            predict_time("quick", "shmem", 1 << 16, 16)

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            predict_time("radix", "shmem", 100, 16)

    def test_rejects_bad_radix(self):
        with pytest.raises(ValueError):
            predict_time("radix", "shmem", 1 << 16, 16, radix=0)


class TestPredictVsSimulation:
    """The formula should track the full simulation on uniform keys."""

    @pytest.mark.parametrize("model", ["ccsas", "ccsas-new", "mpi-new", "shmem"])
    def test_radix_within_25_percent(self, model):
        n, p = 1 << 20, 16
        runner = ExperimentRunner()
        sim = runner.run(
            RunSpec("radix", model, n, p, 8, "random", max_actual=1 << 16)
        ).time_ns
        pred = predict_time("radix", model, n, p, 8)
        assert pred == pytest.approx(sim, rel=0.25), model

    @pytest.mark.parametrize("model", ["ccsas", "mpi-new", "shmem"])
    def test_sample_within_25_percent(self, model):
        n, p = 1 << 20, 16
        runner = ExperimentRunner()
        sim = runner.run(
            RunSpec("sample", model, n, p, 11, "random", max_actual=1 << 16)
        ).time_ns
        pred = predict_time("sample", model, n, p, 11)
        assert pred == pytest.approx(sim, rel=0.25), model


class TestPredictShapes:
    def test_model_ordering_at_scale(self):
        """The formula reproduces the headline ordering at 64M/64p."""
        n, p = 1 << 26, 64
        t = {
            m: predict_time("radix", m, n, p, 8)
            for m in ("ccsas", "ccsas-new", "mpi-new", "mpi-sgi", "shmem")
        }
        assert t["shmem"] < t["ccsas-new"] < t["mpi-new"] < t["mpi-sgi"] < t["ccsas"]

    def test_speedup_superlinear_at_64m(self):
        assert predict_speedup("radix", "shmem", 1 << 26, 64, 8) > 64

    def test_time_increases_with_n(self):
        t1 = predict_time("radix", "shmem", 1 << 20, 16, 8)
        t2 = predict_time("radix", "shmem", 1 << 24, 16, 8)
        assert t2 > 8 * t1

    def test_more_procs_faster_at_scale(self):
        big = 1 << 26
        t16 = predict_time("radix", "shmem", big, 16, 8)
        t64 = predict_time("radix", "shmem", big, 64, 8)
        assert t64 < t16


class TestPaperHeadlineClaims:
    def test_one_gig_keys_in_about_thirty_seconds(self):
        """Section 4.2.3: 'We can sort the 1G integers using radix 12 in
        30 seconds on our machine.'  The calibrated model predicts ~38 s
        -- within the reproduction's shape tolerance."""
        t_s = predict_time("radix", "shmem", 1 << 30, 64, 12) / 1e9
        assert 20 < t_s < 60
