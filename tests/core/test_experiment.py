"""Experiment grid runner tests."""

import pytest

from repro.core.experiment import (
    ExperimentRunner,
    RunSpec,
    SIZES,
    actual_size,
    paper_page_bytes,
)


class TestRunSpec:
    def test_actual_size_capping(self):
        spec = RunSpec("radix", "shmem", SIZES["64M"], 64, 8, max_actual=1 << 16)
        assert spec.n_actual == 1 << 16
        assert spec.scale == (1 << 26) // (1 << 16)

    def test_actual_keeps_p_squared_divisibility(self):
        spec = RunSpec("radix", "shmem", 1 << 14, 64, 8, max_actual=1 << 10)
        assert spec.n_actual % (64 * 64) == 0

    def test_small_sizes_unscaled(self):
        spec = RunSpec("radix", "shmem", 1 << 14, 16, 8)
        assert spec.n_actual == 1 << 14
        assert spec.scale == 1

    def test_size_label(self):
        assert RunSpec("radix", "shmem", SIZES["16M"], 16, 8).size_label() == "16M"
        assert RunSpec("radix", "shmem", 1 << 21, 16, 8).size_label() == "2M"

    def test_validation(self):
        with pytest.raises(ValueError):
            RunSpec("quick", "shmem", 1 << 14, 16, 8)
        with pytest.raises(ValueError):
            RunSpec("radix", "shmem", 100, 16, 8)  # not divisible

    def test_page_policy(self):
        assert paper_page_bytes(SIZES["64M"]) == 64 * 1024
        assert paper_page_bytes(SIZES["256M"]) == 256 * 1024


class TestActualSize:
    """The one shared halving helper behind RunSpec.n_actual and the
    sequential baseline (regression: the two used to disagree)."""

    def test_no_halving_needed(self):
        assert actual_size(1 << 14, 1 << 18) == 1 << 14

    def test_halves_to_max_actual(self):
        assert actual_size(1 << 26, 1 << 18) == 1 << 18

    def test_respects_floor(self):
        assert actual_size(1 << 14, 1 << 10, floor=64 * 64) == 64 * 64

    def test_floor_default_is_one(self):
        assert actual_size(1 << 20, 1 << 10) == 1 << 10

    def test_runspec_uses_helper(self):
        spec = RunSpec("radix", "shmem", 1 << 14, 64, 8, max_actual=1 << 10)
        assert spec.n_actual == actual_size(1 << 14, 1 << 10, floor=64 * 64)

    def test_sequential_uses_helper(self):
        runner = ExperimentRunner(cache=False)
        seq = runner.sequential(1 << 20, max_actual=1 << 14, floor=16 * 16)
        assert len(seq.sorted_keys) == actual_size(1 << 20, 1 << 14, floor=256)

    def test_sequential_floor_stops_halving(self):
        runner = ExperimentRunner(cache=False)
        seq = runner.sequential(1 << 14, max_actual=1 << 8, floor=64 * 64)
        assert len(seq.sorted_keys) == 64 * 64

    def test_speedup_baseline_matches_parallel_sampling(self):
        """The speedup denominator samples the same actual array size as
        the parallel run it normalizes (same max_actual, same p**2
        floor)."""
        runner = ExperimentRunner(cache=False)
        spec = RunSpec("radix", "shmem", 1 << 14, 64, 8, max_actual=1 << 10)
        runner.speedup(spec)
        (seq,) = runner._seq.values()
        assert len(seq.sorted_keys) == spec.n_actual


class TestRunner:
    def test_memoization(self):
        runner = ExperimentRunner()
        spec = RunSpec("radix", "shmem", 1 << 14, 16, 8)
        a = runner.run(spec)
        b = runner.run(spec)
        assert a is b

    def test_sequential_memoized(self):
        runner = ExperimentRunner()
        a = runner.sequential(1 << 16)
        b = runner.sequential(1 << 16)
        assert a is b
        c = runner.sequential(1 << 18)
        assert c is not a

    def test_speedup_positive(self):
        runner = ExperimentRunner()
        s = runner.speedup(RunSpec("radix", "shmem", 1 << 16, 16, 8))
        assert 1 < s < 64

    def test_best_over_radix(self):
        runner = ExperimentRunner()
        spec = RunSpec("radix", "shmem", 1 << 16, 16, 8)
        best, r = runner.best_over_radix(spec, [6, 8, 11])
        assert r in (6, 8, 11)
        for other in (6, 8, 11):
            from dataclasses import replace

            assert best.time_ns <= runner.run(replace(spec, radix=other)).time_ns

    def test_clear(self):
        runner = ExperimentRunner()
        runner.run(RunSpec("radix", "shmem", 1 << 14, 16, 8))
        runner.clear()
        assert not runner._runs
