"""``ExperimentRunner.run_many`` tests: serial/parallel parity, memo and
disk-cache interplay, ordering, and progress trace spans."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.experiment import ExperimentRunner, RunSpec
from repro.core.gridcache import GridCache
from repro.trace import MemoryRecorder, PID_GRID, use_recorder

SPECS = [
    RunSpec("radix", m, 1 << 14, 16, r)
    for m in ("shmem", "ccsas")
    for r in (7, 8)
] + [RunSpec("sample", "shmem", 1 << 14, 16, 11)]


def _assert_outcomes_identical(a, b):
    assert a.time_ns == b.time_ns
    assert a.model_name == b.model_name
    assert np.array_equal(a.sorted_keys, b.sorted_keys)
    assert a.report.category_matrix().tobytes() == (
        b.report.category_matrix().tobytes()
    )


class TestRunMany:
    def test_serial_matches_run(self):
        r1 = ExperimentRunner(cache=False)
        many = r1.run_many(SPECS)
        r2 = ExperimentRunner(cache=False)
        for spec, outcome in zip(SPECS, many):
            _assert_outcomes_identical(outcome, r2.run(spec))

    def test_parallel_matches_serial(self):
        serial = ExperimentRunner(cache=False).run_many(SPECS)
        parallel = ExperimentRunner(cache=False).run_many(SPECS, parallel=2)
        for a, b in zip(serial, parallel):
            _assert_outcomes_identical(a, b)

    def test_preserves_order_and_duplicates(self):
        specs = [SPECS[0], SPECS[1], SPECS[0], SPECS[1]]
        outcomes = ExperimentRunner(cache=False).run_many(specs)
        assert len(outcomes) == 4
        assert outcomes[0] is outcomes[2]
        assert outcomes[1] is outcomes[3]
        assert outcomes[0].model_name != outcomes[1].model_name or (
            outcomes[0].radix != outcomes[1].radix
        )

    def test_merges_into_memo(self):
        runner = ExperimentRunner(cache=False)
        outcomes = runner.run_many(SPECS[:2], parallel=2)
        # subsequent run() calls are pure memo hits
        assert runner.run(SPECS[0]) is outcomes[0]
        assert runner.run(SPECS[1]) is outcomes[1]

    def test_parallel_workers_populate_shared_disk_cache(self, tmp_path):
        cache = GridCache(tmp_path)
        ExperimentRunner(cache=cache).run_many(SPECS[:3], parallel=2)
        assert GridCache(tmp_path).disk_stats()["by_kind"]["run"] == 3
        # a fresh runner serves all three from disk
        fresh = ExperimentRunner(cache=GridCache(tmp_path))
        fresh.run_many(SPECS[:3])
        assert fresh.cache.stats.hits == 3
        assert fresh.cache.stats.stores == 0

    def test_runner_default_parallelism(self):
        runner = ExperimentRunner(cache=False, parallel=2)
        outcomes = runner.run_many(SPECS[:2])
        baseline = ExperimentRunner(cache=False)
        for spec, outcome in zip(SPECS[:2], outcomes):
            _assert_outcomes_identical(outcome, baseline.run(spec))

    def test_parallel_disk_hits_skip_workers(self, tmp_path):
        warm = ExperimentRunner(cache=GridCache(tmp_path))
        warm.run_many(SPECS[:2])
        r = ExperimentRunner(cache=GridCache(tmp_path), parallel=2)
        r.run_many(SPECS[:2])
        assert r.cache.stats.hits == 2
        assert r.cache.stats.misses == 0

    def test_empty_specs(self):
        assert ExperimentRunner(cache=False).run_many([]) == []


class TestProgressSpans:
    def test_span_per_computed_cell(self):
        rec = MemoryRecorder()
        with use_recorder(rec):
            ExperimentRunner(cache=False).run_many(SPECS[:3])
        cells = rec.by_cat("grid.cell")
        assert len(cells) == 3
        assert all(e.pid == PID_GRID for e in cells)
        assert {e.args["source"] for e in cells} == {"computed"}

    def test_span_source_disk(self, tmp_path):
        ExperimentRunner(cache=GridCache(tmp_path)).run_many(SPECS[:2])
        rec = MemoryRecorder()
        with use_recorder(rec):
            ExperimentRunner(cache=GridCache(tmp_path)).run_many(SPECS[:2])
        assert {e.args["source"] for e in rec.by_cat("grid.cell")} == {"disk"}

    def test_span_source_worker(self):
        rec = MemoryRecorder()
        with use_recorder(rec):
            ExperimentRunner(cache=False).run_many(SPECS[:2], parallel=2)
        cells = rec.by_cat("grid.cell")
        assert len(cells) == 2
        assert {e.args["source"] for e in cells} == {"worker"}

    def test_memo_hits_emit_no_spans(self):
        runner = ExperimentRunner(cache=False)
        runner.run_many(SPECS[:2])
        rec = MemoryRecorder()
        with use_recorder(rec):
            runner.run_many(SPECS[:2])
        assert rec.by_cat("grid.cell") == []

    def test_cell_label_names_span(self):
        rec = MemoryRecorder()
        with use_recorder(rec):
            ExperimentRunner(cache=False).run_many([SPECS[0]])
        (event,) = rec.by_cat("grid.cell")
        assert event.name == SPECS[0].cell_label()
        assert "radix/shmem" in event.name


class TestBestOverRadixPrefetch:
    def test_best_over_radix_unchanged(self):
        runner = ExperimentRunner(cache=False)
        spec = RunSpec("radix", "shmem", 1 << 16, 16, 8)
        best, r = runner.best_over_radix(spec, [6, 8, 11])
        assert r in (6, 8, 11)
        from dataclasses import replace

        for other in (6, 8, 11):
            assert best.time_ns <= runner.run(replace(spec, radix=other)).time_ns
