"""Persistent grid-cache tests: key derivation, hit/miss/invalidation,
corruption tolerance, maintenance commands, and the ExperimentRunner
integration."""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.core import gridcache
from repro.core.experiment import ExperimentRunner, RunSpec
from repro.core.gridcache import (
    GridCache,
    SCHEMA_VERSION,
    canonical_key,
    code_fingerprint,
    default_cache_dir,
    format_stats,
)
from repro.machine.config import MachineConfig
from repro.machine.costs import DEFAULT_COSTS


@pytest.fixture
def cache(tmp_path):
    return GridCache(tmp_path / "cache")


SPEC = RunSpec("radix", "shmem", 1 << 14, 16, 8)


class TestKeyDerivation:
    def test_digest_stable_across_instances(self, tmp_path):
        a = GridCache(tmp_path)
        b = GridCache(tmp_path)
        material = {"spec": SPEC, "costs": DEFAULT_COSTS}
        assert a.key_digest("run", material) == b.key_digest("run", material)

    def test_digest_differs_by_kind(self, cache):
        material = {"spec": SPEC}
        assert cache.key_digest("run", material) != cache.key_digest(
            "seq", material
        )

    def test_digest_sensitive_to_cost_model(self, cache):
        base = {"spec": SPEC, "costs": DEFAULT_COSTS}
        changed = {
            "spec": SPEC,
            "costs": DEFAULT_COSTS.scaled(hist_busy_ns_per_key=1.0),
        }
        assert cache.key_digest("run", base) != cache.key_digest("run", changed)

    def test_digest_sensitive_to_machine_config(self, cache):
        m1 = MachineConfig.origin2000(n_processors=16, scale=1)
        m2 = MachineConfig.origin2000(
            n_processors=16, scale=1, page_bytes=256 * 1024
        )
        assert cache.key_digest("run", {"machine": m1}) != cache.key_digest(
            "run", {"machine": m2}
        )

    def test_digest_sensitive_to_spec_fields(self, cache):
        from dataclasses import replace

        for other in (
            replace(SPEC, radix=11),
            replace(SPEC, n_procs=32),
            replace(SPEC, distribution="zero"),
            replace(SPEC, seed=2),
            replace(SPEC, max_actual=1 << 16),
        ):
            assert cache.key_digest("run", {"spec": SPEC}) != cache.key_digest(
                "run", {"spec": other}
            )

    def test_digest_sensitive_to_code_fingerprint(self, cache, monkeypatch):
        d1 = cache.key_digest("run", {"spec": SPEC})
        monkeypatch.setattr(gridcache, "_fingerprint", "deadbeef")
        d2 = cache.key_digest("run", {"spec": SPEC})
        assert d1 != d2

    def test_canonical_key_tags_dataclass_type(self):
        doc = canonical_key(SPEC)
        assert doc["__dataclass__"] == "RunSpec"
        assert doc["radix"] == 8

    def test_canonical_key_rejects_exotica(self):
        with pytest.raises(TypeError):
            canonical_key({"x": object()})

    def test_code_fingerprint_is_hex_and_cached(self):
        fp = code_fingerprint()
        assert len(fp) == 64
        int(fp, 16)
        assert code_fingerprint() is fp  # memoized

    def test_default_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"


class TestGetPut:
    def test_roundtrip(self, cache):
        payload = {"arr": np.arange(10), "x": 1.5}
        assert cache.get("run", {"k": 1}) is None
        assert cache.put("run", {"k": 1}, payload)
        got = cache.get("run", {"k": 1})
        assert np.array_equal(got["arr"], payload["arr"])
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_miss_on_different_key(self, cache):
        cache.put("run", {"k": 1}, "a")
        assert cache.get("run", {"k": 2}) is None

    def test_shared_between_instances(self, tmp_path):
        GridCache(tmp_path).put("run", {"k": 1}, "payload")
        assert GridCache(tmp_path).get("run", {"k": 1}) == "payload"

    def test_truncated_entry_recovers(self, cache):
        cache.put("run", {"k": 1}, "payload")
        (path,) = list(cache._entries())
        path.write_bytes(path.read_bytes()[:40])
        assert cache.get("run", {"k": 1}) is None
        assert cache.stats.errors == 1
        assert not path.exists()  # bad entry reaped
        # and the slot is usable again
        assert cache.put("run", {"k": 1}, "payload2")
        assert cache.get("run", {"k": 1}) == "payload2"

    def test_bitflipped_entry_recovers(self, cache):
        cache.put("run", {"k": 1}, "payload")
        (path,) = list(cache._entries())
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert cache.get("run", {"k": 1}) is None
        assert cache.stats.errors == 1

    def test_garbage_file_recovers(self, cache):
        cache.put("run", {"k": 1}, "payload")
        (path,) = list(cache._entries())
        path.write_bytes(b"not a cache entry at all")
        assert cache.get("run", {"k": 1}) is None

    def test_unpicklable_payload_dropped_not_raised(self, cache):
        assert not cache.put("run", {"k": 1}, lambda: None)
        assert cache.stats.errors == 1

    def test_unwritable_root_degrades(self, tmp_path):
        # Nesting the root under a regular file makes every mkdir/open
        # fail with ENOTDIR, even when the suite runs as root (for whom
        # chmod 0o500 would be a no-op).
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        c = GridCache(blocker / "cache")
        assert not c.put("run", {"k": 1}, "payload")
        assert c.get("run", {"k": 1}) is None

    def test_invalidate(self, cache):
        cache.put("run", {"k": 1}, "payload")
        cache.invalidate("run", {"k": 1})
        assert cache.get("run", {"k": 1}) is None

    def test_schema_version_mismatch_is_miss(self, cache, monkeypatch):
        cache.put("run", {"k": 1}, "payload")
        # An entry written by a future/other schema lands in a different
        # directory; simulate by corrupting the stored schema field.
        (path,) = list(cache._entries())
        import hashlib
        import zlib

        entry = {
            "schema": SCHEMA_VERSION + 1,
            "kind": "run",
            "fingerprint": code_fingerprint(),
            "key": {},
            "payload": "stale",
        }
        body = zlib.compress(pickle.dumps(entry))
        path.write_bytes(
            gridcache._MAGIC + hashlib.sha256(body).digest() + body
        )
        assert cache.get("run", {"k": 1}) is None

    def test_stale_fingerprint_is_miss(self, cache, monkeypatch):
        cache.put("run", {"k": 1}, "payload")
        monkeypatch.setattr(gridcache, "_fingerprint", "0" * 64)
        fresh = GridCache(cache.root)
        assert fresh.get("run", {"k": 1}) is None


class TestMaintenance:
    def test_disk_stats(self, cache):
        cache.put("run", {"k": 1}, "a")
        cache.put("seq", {"k": 2}, "b")
        disk = cache.disk_stats()
        assert disk["entries"] == 2
        assert disk["by_kind"] == {"run": 1, "seq": 1}
        assert disk["bytes"] > 0

    def test_clear(self, cache):
        cache.put("run", {"k": 1}, "a")
        cache.put("seq", {"k": 2}, "b")
        assert cache.clear() == 2
        assert cache.disk_stats()["entries"] == 0
        assert cache.get("run", {"k": 1}) is None

    def test_gc_reaps_corrupt_and_stale(self, cache, monkeypatch):
        cache.put("run", {"k": 1}, "a")
        cache.put("run", {"k": 2}, "b")
        (p1, p2) = sorted(cache._entries())
        p1.write_bytes(b"garbage")
        removed = cache.gc()
        assert removed["corrupt"] == 1
        assert cache.disk_stats()["entries"] == 1
        # now invalidate the survivor via a fingerprint change
        monkeypatch.setattr(gridcache, "_fingerprint", "f" * 64)
        removed = GridCache(cache.root).gc()
        assert removed["fingerprint"] == 1

    def test_gc_max_age(self, cache):
        cache.put("run", {"k": 1}, "a")
        (path,) = list(cache._entries())
        old = path.stat().st_mtime - 40 * 86400
        os.utime(path, (old, old))
        removed = cache.gc(max_age_days=30)
        assert removed["aged"] == 1

    def test_gc_keeps_live_entries(self, cache):
        cache.put("run", {"k": 1}, "a")
        assert sum(cache.gc().values()) == 0
        assert cache.get("run", {"k": 1}) == "a"

    def test_format_stats_mentions_root(self, cache):
        cache.put("run", {"k": 1}, "a")
        text = format_stats(cache)
        assert str(cache.root) in text
        assert "entries" in text


class TestRunnerIntegration:
    def test_run_served_from_disk_across_runners(self, tmp_path):
        c1 = GridCache(tmp_path)
        r1 = ExperimentRunner(cache=c1)
        a = r1.run(SPEC)
        assert c1.stats.stores == 1
        r2 = ExperimentRunner(cache=GridCache(tmp_path))
        b = r2.run(SPEC)
        assert r2.cache.stats.hits == 1
        assert a is not b
        assert np.array_equal(a.sorted_keys, b.sorted_keys)
        assert a.time_ns == b.time_ns

    def test_sequential_served_from_disk(self, tmp_path):
        r1 = ExperimentRunner(cache=GridCache(tmp_path))
        a = r1.sequential(1 << 16)
        r2 = ExperimentRunner(cache=GridCache(tmp_path))
        b = r2.sequential(1 << 16)
        assert r2.cache.stats.hits == 1
        assert a.time_ns == b.time_ns

    def test_cost_model_change_invalidates(self, tmp_path):
        r1 = ExperimentRunner(cache=GridCache(tmp_path))
        r1.run(SPEC)
        r2 = ExperimentRunner(
            costs=DEFAULT_COSTS.scaled(hist_busy_ns_per_key=1.0),
            cache=GridCache(tmp_path),
        )
        r2.run(SPEC)
        assert r2.cache.stats.hits == 0
        assert r2.cache.stats.misses >= 1

    def test_machine_config_change_invalidates(self, tmp_path):
        # paper_page_bytes flips at 256M labeled keys, changing the
        # machine config and therefore the key -- same actual array.
        from dataclasses import replace

        r = ExperimentRunner(cache=GridCache(tmp_path))
        r.run(replace(SPEC, n_labeled=1 << 28, max_actual=1 << 10))
        assert r.cache.stats.stores == 1
        r.run(replace(SPEC, n_labeled=1 << 26, max_actual=1 << 10))
        assert r.cache.stats.hits == 0

    def test_corrupted_payload_recomputed(self, tmp_path):
        c = GridCache(tmp_path)
        r1 = ExperimentRunner(cache=c)
        a = r1.run(SPEC)
        # Poison the stored payload with an unsorted array.
        from repro.core.experiment import _run_key_material
        import dataclasses

        bad = dataclasses.replace(a, sorted_keys=a.sorted_keys[::-1].copy())
        c.put("run", _run_key_material(SPEC, r1.costs), bad)
        r2 = ExperimentRunner(cache=GridCache(tmp_path))
        b = r2.run(SPEC)
        assert np.array_equal(b.sorted_keys, a.sorted_keys)
        assert r2.cache.stats.stores == 1  # recomputed and republished

    def test_cache_false_disables_persistence(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "never"))
        r = ExperimentRunner(cache=False)
        r.run(SPEC)
        assert r.cache is None
        assert not (tmp_path / "never").exists()

    def test_repro_no_cache_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert ExperimentRunner().cache is None

    def test_default_cache_uses_env_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        r = ExperimentRunner()
        assert r.cache is not None
        assert r.cache.root == tmp_path / "envcache"
