"""Public API tests: the backend-aware ``sort`` plus the legacy shims."""

import warnings

import numpy as np
import pytest

from repro import (
    MemoryRecorder,
    SortResult,
    compare_models,
    sequential_baseline,
    simulate_sort,
    sort,
)
from repro.data import generate

# The legacy entry points still work, but they warn; the dedicated
# TestDeprecationShims class asserts the warning itself.
legacy = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestSort:
    def test_sim_backend_default(self):
        keys = generate("gauss", 16 * 256, 16)
        result = sort(keys, n_procs=16)
        assert isinstance(result, SortResult)
        assert result.backend == "sim"
        assert np.array_equal(result.sorted_keys, np.sort(keys))
        assert result.report.total_time_ns > 0
        assert result.trace == ()

    def test_native_backend(self):
        rng = np.random.default_rng(11)
        keys = rng.integers(0, 1 << 24, size=10_000, dtype=np.int64)
        result = sort(keys, algorithm="sample", backend="native", n_procs=2)
        assert result.backend == "native"
        assert np.array_equal(result.sorted_keys, np.sort(keys))
        assert result.report.total_time_ns > 0

    def test_trace_true_fills_trace(self):
        keys = generate("gauss", 8 * 128, 8)
        result = sort(keys, n_procs=8, trace=True)
        assert result.trace
        assert {e.cat for e in result.trace} >= {"sim.phase", "sim.barrier"}

    def test_trace_recorder_instance(self):
        keys = generate("gauss", 8 * 128, 8)
        rec = MemoryRecorder()
        result = sort(keys, n_procs=8, trace=rec)
        assert result.trace == tuple(rec.events)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            sort(np.arange(16), backend="fpga", n_procs=16)


@legacy
class TestSimulateSort:
    def test_radix_default(self):
        keys = generate("gauss", 16 * 256, 16)
        out = simulate_sort(keys, n_procs=16)
        assert np.array_equal(out.sorted_keys, np.sort(keys))
        assert out.algorithm == "radix"
        assert out.radix == 8

    def test_sample_default_radix(self):
        keys = generate("gauss", 16 * 256, 16)
        out = simulate_sort(keys, algorithm="sample", n_procs=16)
        assert out.radix == 11
        assert np.array_equal(out.sorted_keys, np.sort(keys))

    @pytest.mark.parametrize("model", ["ccsas", "mpi", "mpi-sgi", "shmem"])
    def test_models_accepted(self, model):
        keys = generate("random", 16 * 64, 16)
        out = simulate_sort(keys, model=model, n_procs=16)
        assert np.array_equal(out.sorted_keys, np.sort(keys))

    def test_small_key_range_fewer_passes(self):
        """key_bits follows the actual maximum key (the paper: 'the maximum
        key value determines how many iterations will actually be needed')."""
        keys = np.tile(np.arange(256, dtype=np.int64), 16)
        out = simulate_sort(keys, n_procs=16, radix=8)
        assert out.passes == 1

    def test_rejects_negative_keys(self):
        with pytest.raises(ValueError):
            simulate_sort(np.array([-1] * 16), n_procs=16)

    def test_rejects_floats(self):
        # Floats are handled by the order-preserving transform at the
        # backend seam; dtypes without such a mapping still raise.
        out = simulate_sort(np.ones(16) * 2.5, n_procs=16)
        assert np.array_equal(out.sorted_keys, np.full(16, 2.5))
        with pytest.raises(TypeError):
            simulate_sort(np.ones(16, dtype=complex), n_procs=16)

    def test_rejects_empty_and_2d(self):
        with pytest.raises(ValueError):
            simulate_sort(np.empty(0, dtype=np.int64))
        with pytest.raises(ValueError):
            simulate_sort(np.zeros((4, 4), dtype=np.int64))

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError):
            simulate_sort(np.arange(16), algorithm="merge", n_procs=16)


class TestSequentialBaseline:
    def test_runs(self):
        keys = generate("gauss", 4096, 1)
        res = sequential_baseline(keys)
        assert res.time_ns > 0
        assert np.array_equal(res.sorted_keys, np.sort(keys))


@legacy
class TestCompareModels:
    def test_default_model_sets(self):
        keys = generate("gauss", 16 * 128, 16)
        radix = compare_models(keys, "radix", n_procs=16)
        sample = compare_models(keys, "sample", n_procs=16)
        assert set(radix) == {"ccsas", "ccsas-new", "mpi-new", "mpi-sgi", "shmem"}
        assert set(sample) == {"ccsas", "mpi-new", "mpi-sgi", "shmem"}
        for out in radix.values():
            assert np.array_equal(out.sorted_keys, np.sort(keys))

    def test_subset(self):
        keys = generate("gauss", 16 * 128, 16)
        res = compare_models(keys, "radix", models=["shmem"], n_procs=16)
        assert list(res) == ["shmem"]


class TestDeprecationShims:
    def test_simulate_sort_warns(self):
        keys = generate("gauss", 16 * 64, 16)
        with pytest.warns(DeprecationWarning, match="simulate_sort"):
            out = simulate_sort(keys, n_procs=16)
        assert np.array_equal(out.sorted_keys, np.sort(keys))

    def test_compare_models_warns_once(self):
        keys = generate("gauss", 16 * 64, 16)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            compare_models(keys, "radix", models=["shmem"], n_procs=16)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1  # no per-model warning spam
