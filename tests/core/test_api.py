"""Public API tests."""

import numpy as np
import pytest

from repro import compare_models, sequential_baseline, simulate_sort
from repro.data import generate


class TestSimulateSort:
    def test_radix_default(self):
        keys = generate("gauss", 16 * 256, 16)
        out = simulate_sort(keys, n_procs=16)
        assert np.array_equal(out.sorted_keys, np.sort(keys))
        assert out.algorithm == "radix"
        assert out.radix == 8

    def test_sample_default_radix(self):
        keys = generate("gauss", 16 * 256, 16)
        out = simulate_sort(keys, algorithm="sample", n_procs=16)
        assert out.radix == 11
        assert np.array_equal(out.sorted_keys, np.sort(keys))

    @pytest.mark.parametrize("model", ["ccsas", "mpi", "mpi-sgi", "shmem"])
    def test_models_accepted(self, model):
        keys = generate("random", 16 * 64, 16)
        out = simulate_sort(keys, model=model, n_procs=16)
        assert np.array_equal(out.sorted_keys, np.sort(keys))

    def test_small_key_range_fewer_passes(self):
        """key_bits follows the actual maximum key (the paper: 'the maximum
        key value determines how many iterations will actually be needed')."""
        keys = np.tile(np.arange(256, dtype=np.int64), 16)
        out = simulate_sort(keys, n_procs=16, radix=8)
        assert out.passes == 1

    def test_rejects_negative_keys(self):
        with pytest.raises(ValueError):
            simulate_sort(np.array([-1] * 16), n_procs=16)

    def test_rejects_floats(self):
        with pytest.raises(TypeError):
            simulate_sort(np.ones(16), n_procs=16)

    def test_rejects_empty_and_2d(self):
        with pytest.raises(ValueError):
            simulate_sort(np.empty(0, dtype=np.int64))
        with pytest.raises(ValueError):
            simulate_sort(np.zeros((4, 4), dtype=np.int64))

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError):
            simulate_sort(np.arange(16), algorithm="merge", n_procs=16)


class TestSequentialBaseline:
    def test_runs(self):
        keys = generate("gauss", 4096, 1)
        res = sequential_baseline(keys)
        assert res.time_ns > 0
        assert np.array_equal(res.sorted_keys, np.sort(keys))


class TestCompareModels:
    def test_default_model_sets(self):
        keys = generate("gauss", 16 * 128, 16)
        radix = compare_models(keys, "radix", n_procs=16)
        sample = compare_models(keys, "sample", n_procs=16)
        assert set(radix) == {"ccsas", "ccsas-new", "mpi-new", "mpi-sgi", "shmem"}
        assert set(sample) == {"ccsas", "mpi-new", "mpi-sgi", "shmem"}
        for out in radix.values():
            assert np.array_equal(out.sorted_keys, np.sort(keys))

    def test_subset(self):
        keys = generate("gauss", 16 * 128, 16)
        res = compare_models(keys, "radix", models=["shmem"], n_procs=16)
        assert list(res) == ["shmem"]
