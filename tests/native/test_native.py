"""Native multiprocessing sort tests (real parallelism on the host)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.native import (
    PhaseTiming,
    SharedArray,
    WorkerPool,
    parallel_radix_sort,
    parallel_sample_sort,
    parallel_sort,
)
from repro.native.pool import default_start_method, default_workers
from repro.trace import MemoryRecorder, use_recorder


@pytest.fixture(scope="module")
def pool():
    with WorkerPool(4) as p:
        yield p


def _one_over(x):
    return 1 // x


class TestSharedArray:
    def test_roundtrip(self):
        src = np.arange(100, dtype=np.int32)
        with SharedArray.from_array(src) as sa:
            assert np.array_equal(sa.array, src)
            with SharedArray.attach(sa.name, (100,), np.int32) as view:
                view.array[0] = 42
            assert sa.array[0] == 42

    def test_double_close_safe(self):
        sa = SharedArray(10)
        sa.close()
        sa.close()

    def test_attach_requires_name(self):
        with pytest.raises(ValueError):
            SharedArray(10, create=False)


class TestAttachTracking:
    def test_concurrent_attaches_restore_register(self):
        """Regression (bpo-38119 workaround): attach used to monkey-patch
        ``resource_tracker.register`` without a lock, so two threads
        attaching concurrently could save each other's no-op as "the
        original" and leave registration permanently disabled.  After any
        number of concurrent attaches the real function must be back."""
        import threading
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        src = np.arange(256, dtype=np.int64)
        errors = []
        with SharedArray.from_array(src) as sa:
            def attach_loop():
                try:
                    for _ in range(40):
                        view = SharedArray.attach(sa.name, (256,), np.int64)
                        assert view.array[0] == 0
                        view.close()
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=attach_loop) for _ in range(8)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        assert resource_tracker.register is original

    def test_attach_does_not_register_with_tracker(self):
        """A worker-side attach must not register the segment: under
        fork the tracker is shared with the owner, and a second
        registration makes unlink bookkeeping fight the owner's."""
        from multiprocessing import resource_tracker

        registered = []
        original = resource_tracker.register

        def spy(name, rtype):
            registered.append((name, rtype))
            return original(name, rtype)

        src = np.arange(16, dtype=np.int64)
        with SharedArray.from_array(src) as sa:
            resource_tracker.register = spy
            try:
                view = SharedArray.attach(sa.name, (16,), np.int64)
                view.close()
            finally:
                resource_tracker.register = original
        assert registered == []


class TestWorkerPool:
    def test_map_semantics(self, pool):
        assert pool.run_phase(abs, [-1, -2, 3]) == [1, 2, 3]

    def test_single_worker_inline(self):
        with WorkerPool(1) as p:
            assert p.run_phase(abs, [-5]) == [5]

    def test_closed_pool_rejected(self):
        p = WorkerPool(1)
        p.close()
        with pytest.raises(RuntimeError):
            p.run_phase(abs, [1])

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_context_manager_not_reusable(self):
        p = WorkerPool(1)
        with p:
            pass
        with pytest.raises(RuntimeError):
            p.run_phase(abs, [1])
        with pytest.raises(RuntimeError):
            with p:
                pass

    def test_serial_path_collects_timings(self):
        with WorkerPool(1, collect_timings=True) as p:
            assert p.run_phase(abs, [-1, -2], name="x") == [1, 2]
            assert p.run_phase(abs, [-3]) == [3]
        assert [t.name for t in p.timings] == ["x", "phase2"]
        t = p.timings[0]
        assert isinstance(t, PhaseTiming)
        assert len(t.tasks) == 2
        assert t.elapsed_s >= 0
        for begin, end in t.tasks:
            assert t.begin <= begin <= end <= t.end

    def test_parallel_path_collects_timings(self):
        with WorkerPool(2, collect_timings=True) as p:
            p.run_phase(abs, [-1, -2, -3, -4], name="y")
        (t,) = p.timings
        assert t.name == "y" and len(t.tasks) == 4

    def test_untimed_pool_keeps_no_timings(self, pool):
        pool.run_phase(abs, [-1])
        assert pool.timings == []

    def test_task_slots_bounded_by_n_workers(self):
        """Regression: task trace spans used to be attributed by *task*
        index, so a phase of 8 tasks on 2 workers emitted tids 1..8."""
        rec = MemoryRecorder()
        with use_recorder(rec), WorkerPool(2, collect_timings=True) as p:
            p.run_phase(abs, list(range(-8, 0)), name="bounded")
        spans = [e for e in rec.events if e.cat == "native.task"]
        assert len(spans) == 8
        assert {e.tid for e in spans} <= {1, 2}
        (t,) = p.timings
        assert len(t.slots) == 8
        assert set(t.slots) <= {1, 2}

    def test_slots_stable_across_phases(self):
        with WorkerPool(2, collect_timings=True) as p:
            p.run_phase(abs, [-1, -2, -3, -4], name="a")
            p.run_phase(abs, [-5, -6, -7, -8], name="b")
        seen = set(p.timings[0].slots) | set(p.timings[1].slots)
        assert seen <= {1, 2}

    def test_serial_pool_slot_is_one(self):
        with WorkerPool(1, collect_timings=True) as p:
            p.run_phase(abs, [-1, -2], name="serial")
        assert p.timings[0].slots == (1, 1)

    def test_exception_terminates_workers(self):
        """Regression: a phase raising inside ``with`` used to leave the
        forked workers alive (``__exit__`` only close()d the queue)."""
        p = WorkerPool(2)
        procs = list(p._pool._pool)
        with pytest.raises(ZeroDivisionError):
            with p:
                p.run_phase(_one_over, [0])
        assert p._closed
        for proc in procs:
            proc.join(timeout=10)
            assert not proc.is_alive()

    def test_terminate_reaps_workers(self):
        p = WorkerPool(2)
        procs = list(p._pool._pool)
        p.terminate()
        assert p._closed
        for proc in procs:
            proc.join(timeout=10)
            assert not proc.is_alive()

    def test_start_method_fallback(self, monkeypatch):
        monkeypatch.setattr(
            "multiprocessing.get_all_start_methods",
            lambda: ["spawn", "forkserver"],
        )
        assert default_start_method() == "spawn"

    def test_start_method_prefers_fork(self, monkeypatch):
        monkeypatch.setattr(
            "multiprocessing.get_all_start_methods",
            lambda: ["fork", "spawn", "forkserver"],
        )
        assert default_start_method() == "fork"

    def test_pool_records_start_method(self, pool):
        assert pool.start_method in ("fork", "spawn")

    def test_spawn_pool_sorts(self):
        """The spawn code path must work end to end (it is the fallback
        on fork-less platforms)."""
        ctx_methods = ["spawn"]
        import repro.native.pool as pool_mod

        real = pool_mod.mp.get_all_start_methods
        pool_mod.mp.get_all_start_methods = lambda: ctx_methods
        try:
            with WorkerPool(2) as p:
                assert p.start_method == "spawn"
                assert p.run_phase(abs, [-1, -2, -3]) == [1, 2, 3]
        finally:
            pool_mod.mp.get_all_start_methods = real


class TestDefaultWorkers:
    def test_respects_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: 48)
        assert default_workers() == 48  # no artificial cap

    def test_cpu_count_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.setattr("os.cpu_count", lambda: None)
        assert default_workers() == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_env_override_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            default_workers()

    def test_env_override_nonpositive(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            default_workers()

    def test_pool_uses_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        with WorkerPool() as p:
            assert p.n_workers == 2


class TestParallelRadix:
    def test_sorts_random(self, pool):
        rng = np.random.default_rng(0)
        arr = rng.integers(0, 1 << 31, size=50_000, dtype=np.int64)
        out = parallel_radix_sort(arr, pool=pool)
        assert np.array_equal(out, np.sort(arr))
        assert np.array_equal(arr, arr)  # input untouched

    def test_sorts_duplicates(self, pool):
        arr = np.tile(np.array([3, 1, 2], dtype=np.int64), 1000)
        out = parallel_radix_sort(arr, pool=pool)
        assert np.array_equal(out, np.sort(arr))

    def test_small_and_empty(self, pool):
        assert parallel_radix_sort(np.empty(0, dtype=np.int64), pool=pool).size == 0
        assert list(parallel_radix_sort(np.array([2, 1]), pool=pool)) == [1, 2]

    def test_uint32(self, pool):
        rng = np.random.default_rng(1)
        arr = rng.integers(0, 1 << 32, size=10_000, dtype=np.uint32)
        out = parallel_radix_sort(arr, pool=pool)
        assert np.array_equal(out, np.sort(arr))

    def test_rejects_negative(self, pool):
        with pytest.raises(ValueError):
            parallel_radix_sort(np.array([-1, 2]), pool=pool)

    def test_rejects_floats(self, pool):
        with pytest.raises(TypeError):
            parallel_radix_sort(np.array([1.5]), pool=pool)

    def test_rejects_bad_radix(self, pool):
        with pytest.raises(ValueError):
            parallel_radix_sort(np.array([1, 2]), radix=0, pool=pool)

    @given(st.lists(st.integers(0, 2**31 - 1), max_size=300))
    @settings(max_examples=15, deadline=None)
    def test_matches_numpy(self, values):
        arr = np.array(values, dtype=np.int64)
        out = parallel_radix_sort(arr, n_workers=2)
        assert np.array_equal(out, np.sort(arr))


class TestParallelSample:
    def test_sorts_random(self, pool):
        rng = np.random.default_rng(2)
        arr = rng.integers(-(1 << 30), 1 << 30, size=50_000, dtype=np.int64)
        out = parallel_sample_sort(arr, pool=pool)
        assert np.array_equal(out, np.sort(arr))

    def test_sorts_floats(self, pool):
        rng = np.random.default_rng(3)
        arr = rng.normal(size=20_000)
        out = parallel_sample_sort(arr, pool=pool)
        assert np.array_equal(out, np.sort(arr))

    def test_all_equal(self, pool):
        arr = np.zeros(10_000, dtype=np.int64)
        out = parallel_sample_sort(arr, pool=pool)
        assert np.array_equal(out, arr)

    def test_presorted_and_reversed(self, pool):
        arr = np.arange(10_000, dtype=np.int64)
        assert np.array_equal(parallel_sample_sort(arr, pool=pool), arr)
        assert np.array_equal(parallel_sample_sort(arr[::-1].copy(), pool=pool), arr)

    def test_small_falls_back(self, pool):
        arr = np.array([3, 1, 2], dtype=np.int64)
        assert list(parallel_sample_sort(arr, pool=pool)) == [1, 2, 3]

    @given(st.lists(st.integers(-1000, 1000), max_size=300))
    @settings(max_examples=15, deadline=None)
    def test_matches_numpy(self, values):
        arr = np.array(values, dtype=np.int64)
        out = parallel_sample_sort(arr, n_workers=2)
        assert np.array_equal(out, np.sort(arr))


class TestFrontDoor:
    def test_dispatch(self, pool):
        arr = np.array([5, 3, 4], dtype=np.int64)
        assert list(parallel_sort(arr, "radix", pool=pool)) == [3, 4, 5]
        assert list(parallel_sort(arr, "sample", pool=pool)) == [3, 4, 5]
        with pytest.raises(ValueError):
            parallel_sort(arr, "quick", pool=pool)
