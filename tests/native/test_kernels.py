"""Kernel-layer tests: resolution, primitive parity, blocked placement
stability, and the engineered sorts' new fast/fallback paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.distributions import PAPER_ORDER, generate
from repro.native import kernels, shm
from repro.native.kernels import (
    KERNEL_ENV,
    NAIVE_KERNEL,
    NUMPY_KERNEL,
    resolve,
    slice_bounds,
    warm,
)
from repro.native.pool import WorkerPool
from repro.native.radix import parallel_radix_sort
from repro.native.sample import (
    SPLITTER_SKEW_LIMIT,
    parallel_sample_sort,
    rebalance_duplicate_splitters,
)
from repro.sorts.common import n_passes, partition_counts


@pytest.fixture(scope="module")
def pool():
    with WorkerPool(4) as p:
        yield p


class TestResolve:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        assert resolve().name == "numpy"

    def test_env_selects(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "naive")
        assert resolve().name == "naive"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "naive")
        assert resolve("numpy").name == "numpy"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown native kernel"):
            resolve("vectorwidth9000")

    def test_numba_falls_back_with_one_warning(self, monkeypatch):
        """Without numba installed, requesting it must warn (once) and
        hand back the engineered NumPy kernel, never fail."""
        import sys
        import warnings

        monkeypatch.setattr(kernels, "_numba_cache", None)
        monkeypatch.setattr(kernels, "_numba_failed", False)
        monkeypatch.setattr(kernels, "_warned_fallback", False)
        monkeypatch.setitem(sys.modules, "numba", None)
        with pytest.warns(RuntimeWarning, match="falling back"):
            kern = resolve("numba")
        assert kern.name == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            assert resolve("numba").name == "numpy"  # second time: silent

    def test_auto_without_numba_is_numpy(self, monkeypatch):
        import sys

        monkeypatch.setattr(kernels, "_numba_cache", None)
        monkeypatch.setattr(kernels, "_numba_failed", False)
        monkeypatch.setitem(sys.modules, "numba", None)
        assert resolve("auto").name == "numpy"

    def test_warm_reports_kernel(self):
        assert warm(NUMPY_KERNEL) == "numpy"
        assert warm(NAIVE_KERNEL) == "naive"


class TestPrimitiveParity:
    """The engineered kernels must be bit-identical to the seed ones."""

    @pytest.fixture(params=["numpy", "naive"])
    def kern(self, request):
        return resolve(request.param)

    def test_minmax(self, kern):
        rng = np.random.default_rng(7)
        a = rng.integers(0, 1 << 31, 100_003, dtype=np.int64)
        assert kern.minmax(a) == (int(a.min()), int(a.max()))

    def test_minmax_spans_blocks(self, kern, monkeypatch):
        monkeypatch.setattr(kernels, "BLOCK_ELEMS", 7)
        a = np.arange(100, dtype=np.int64)
        a[93] = -5  # extremum in a trailing partial block
        assert kern.minmax(a) == (-5, 99)

    def test_histogram(self, kern):
        rng = np.random.default_rng(8)
        a = rng.integers(0, 1 << 22, 50_001, dtype=np.int64)
        for shift in (0, 11):
            got = kern.histogram(a, shift, (1 << 11) - 1)
            want = np.bincount((a >> shift) & ((1 << 11) - 1),
                               minlength=1 << 11)
            assert np.array_equal(got, want)
            assert got.sum() == len(a)

    def test_scatter_is_stable_counting_placement(self, kern):
        # Keys whose low 2 bits collide but whose high bits identify the
        # original order: stability means equal digits keep that order.
        src = np.array([0b100, 0b001, 0b1000, 0b101, 0b1100, 0b010],
                       dtype=np.int64)
        mask = 0b11
        counts = np.bincount(src & mask, minlength=mask + 1)
        cursor = np.concatenate(([0], np.cumsum(counts)[:-1])).astype(np.int64)
        dst = np.full(len(src), -1, dtype=np.int64)
        kern.scatter(src, dst, cursor, 0, mask)
        # digit 0 keys in original order, then digit 1 keys, then digit 2.
        assert dst.tolist() == [0b100, 0b1000, 0b1100, 0b001, 0b101, 0b010]
        # Cursors advanced past each bucket.
        assert np.array_equal(
            cursor, np.cumsum(counts).astype(np.int64)
        )

    def test_scatter_blocked_matches_naive(self, kern, monkeypatch):
        monkeypatch.setattr(kernels, "BLOCK_ELEMS", 13)  # force many blocks
        rng = np.random.default_rng(9)
        src = rng.integers(0, 1 << 20, 997, dtype=np.int64)
        mask = (1 << 5) - 1
        counts = np.bincount(src & mask, minlength=mask + 1)
        base = np.concatenate(([0], np.cumsum(counts)[:-1])).astype(np.int64)
        want = np.empty_like(src)
        NAIVE_KERNEL.scatter(src, want, base.copy(), 0, mask)
        got = np.empty_like(src)
        kern.scatter(src, got, base.copy(), 0, mask)
        assert np.array_equal(got, want)


class TestEngineeredRadix:
    def test_all_paper_distributions_parity(self, pool):
        """Blocked vs naive kernels vs np.sort on every paper input."""
        for dist in PAPER_ORDER:
            keys = generate(dist, 1 << 13, 4, seed=11)
            ref = np.sort(keys)
            for kern in ("numpy", "naive"):
                out = parallel_radix_sort(keys, pool=pool, kernel=kern)
                assert np.array_equal(out, ref), (dist, kern)

    def test_adversarial_duplicates(self, pool):
        rng = np.random.default_rng(12)
        n = 1 << 13
        heavy = np.where(
            rng.random(n) < 0.9, 42, rng.integers(0, 1 << 20, n)
        ).astype(np.int64)
        sawtooth = (np.arange(n, dtype=np.int64) % 7) << 40
        for keys in (heavy, sawtooth):
            ref = np.sort(keys)
            for kern in ("numpy", "naive"):
                out = parallel_radix_sort(keys, pool=pool, kernel=kern)
                assert np.array_equal(out, ref)

    def test_stability_across_passes(self, pool):
        """Multi-pass placement must be stable pass over pass: sorting
        (hi << r | lo) keys orders lo within equal hi iff every pass kept
        equal digits in arrival order."""
        rng = np.random.default_rng(13)
        lo = rng.permutation(1 << 10).astype(np.int64)
        hi = rng.integers(0, 4, 1 << 10, dtype=np.int64)
        keys = (hi << 20) | lo
        out = parallel_radix_sort(keys, pool=pool, radix=5, kernel="numpy")
        assert np.array_equal(out, np.sort(keys))

    def test_env_flag_parity(self, pool, monkeypatch):
        keys = generate("random", 1 << 12, 4, seed=14)
        ref = np.sort(keys)
        for flag in ("numpy", "naive"):
            monkeypatch.setenv(KERNEL_ENV, flag)
            assert np.array_equal(parallel_radix_sort(keys, pool=pool), ref)

    def test_p1_fast_path_skips_shared_memory(self):
        before = shm.create_count()
        out = parallel_radix_sort(np.array([9, 3, 7, 1], dtype=np.int64),
                                  n_workers=8)
        assert out.tolist() == [1, 3, 7, 9]
        assert shm.create_count() == before

    def test_p1_fast_path_still_validates(self):
        with pytest.raises(ValueError, match="non-negative"):
            parallel_radix_sort(np.array([-3], dtype=np.int64), n_workers=1)
        with pytest.raises(TypeError):
            parallel_radix_sort(np.array([0.5]), n_workers=1)

    def test_fused_minmax_sizes_pass_count(self):
        """key_bits comes from the fused validation scan's max: 15-bit
        keys at radix 8 must run 2 passes (4 timed phases), not the
        31-bit worst case's 4."""
        with WorkerPool(2, collect_timings=True) as pool:
            keys = np.arange(1 << 10, dtype=np.int64) | (1 << 14)
            parallel_radix_sort(keys, pool=pool, radix=8)
            expected = 2 * n_passes(8, 15)
            assert len(pool.timings) == expected


class TestSampleRebalance:
    def test_matches_simulated_partition_counts(self):
        """The native rebalance must produce exactly the count matrix the
        simulated sorts' partition_counts computes."""
        rng = np.random.default_rng(15)
        n, p = 4096, 4
        keys = np.where(
            rng.random(n) < 0.6, 100, rng.integers(0, 1000, n)
        ).astype(np.int64)
        runs = np.concatenate(
            [np.sort(keys[lo:hi])
             for lo, hi in (slice_bounds(n, p, w) for w in range(p))]
        )
        parts = [runs[slice(*slice_bounds(n, p, w))] for w in range(p)]
        splitters = np.array([100, 100, 100], dtype=np.int64)
        want = partition_counts(parts, splitters)

        counts = np.zeros((p, p), dtype=np.int64)
        for w, part in enumerate(parts):
            edges = np.searchsorted(part, splitters, side="right")
            counts[w] = np.diff(np.concatenate(([0], edges, [len(part)])))
        rebalanced = rebalance_duplicate_splitters(
            counts, splitters, runs, n, p
        )
        assert rebalanced == 1
        assert np.array_equal(counts, want)

    def test_distinct_splitters_untouched(self):
        n, p = 64, 4
        runs = np.sort(np.arange(n, dtype=np.int64))
        splitters = np.array([15, 31, 47], dtype=np.int64)
        counts = np.full((p, p), 4, dtype=np.int64)
        before = counts.copy()
        assert rebalance_duplicate_splitters(counts, splitters, runs, n, p) == 0
        assert np.array_equal(counts, before)

    def test_duplicate_heavy_sample_sort(self, pool):
        rng = np.random.default_rng(16)
        n = 1 << 13
        keys = np.where(
            rng.random(n) < 0.9, 7, rng.integers(0, 1 << 20, n)
        ).astype(np.int64)
        out = parallel_sample_sort(keys, pool=pool)
        assert np.array_equal(out, np.sort(keys))

    def test_constant_keys(self, pool):
        keys = np.full(1 << 12, 5, dtype=np.int64)
        out = parallel_sample_sort(keys, pool=pool)
        assert np.array_equal(out, keys)

    def test_skew_fallback_still_sorts(self, pool, monkeypatch):
        """A (monkeypatched) zero skew budget forces the sequential
        fallback after the count phase; the result must still be
        correct and the shared buffers released."""
        from repro.native import sample

        monkeypatch.setattr(sample, "SPLITTER_SKEW_LIMIT", 0.0)
        keys = generate("random", 1 << 12, 4, seed=17)
        out = parallel_sample_sort(keys, pool=pool)
        assert np.array_equal(out, np.sort(keys))

    def test_skew_limit_is_sane(self):
        assert SPLITTER_SKEW_LIMIT >= 1.0


class TestSliceBounds:
    def test_covers_exactly(self):
        for n in (10, 16, 17):
            for p in (1, 3, 4):
                spans = [slice_bounds(n, p, w) for w in range(p)]
                assert spans[0][0] == 0 and spans[-1][1] == n
                for (a, b), (c, d) in zip(spans, spans[1:]):
                    assert b == c and b >= a
