"""Programming-model layer tests."""

import numpy as np
import pytest

from repro.machine import MachineConfig
from repro.models import (
    CCSASModel,
    CCSASNewModel,
    MODELS,
    MPINewModel,
    MPISGIModel,
    SHMEMModel,
    get_model,
)
from repro.smp import Team, Transport
from repro.sorts.common import CommMatrices

M16 = MachineConfig.origin2000(n_processors=16, scale=1)


class TestRegistry:
    def test_all_models_registered(self):
        assert set(MODELS) == {"ccsas", "ccsas-new", "mpi-new", "mpi-sgi", "shmem"}

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_get_model_by_name(self, name):
        assert get_model(name).name == name

    @pytest.mark.parametrize(
        "alias,canonical",
        [("mpi", "mpi-new"), ("cc-sas", "ccsas"), ("sgi", "mpi-sgi"),
         ("CC-SAS-NEW", "ccsas-new")],
    )
    def test_aliases(self, alias, canonical):
        assert get_model(alias).name == canonical

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown programming model"):
            get_model("pvm")


class TestTransports:
    def test_radix_transports(self):
        assert CCSASModel().exchange_transport is Transport.CCSAS_SCATTERED
        assert CCSASNewModel().exchange_transport is Transport.CCSAS_BULK
        assert MPINewModel().exchange_transport is Transport.MPI_NEW
        assert MPISGIModel().exchange_transport is Transport.MPI_SGI
        assert SHMEMModel().exchange_transport is Transport.SHMEM_GET

    def test_sample_transport_is_reads_for_ccsas(self):
        """Sample sort under CC-SAS pulls keys with remote reads."""
        assert CCSASModel().sample_transport is Transport.CCSAS_READ
        assert CCSASNewModel().sample_transport is Transport.CCSAS_READ
        assert SHMEMModel().sample_transport is None

    def test_buffering(self):
        assert not CCSASModel().buffers_locally
        assert CCSASNewModel().buffers_locally
        assert MPINewModel().buffers_locally
        assert SHMEMModel().buffers_locally


class TestHistogramAccumulation:
    def test_ccsas_uses_prefix_tree(self):
        team = Team(M16, 16)
        CCSASModel().accumulate_histograms(team, 256, "p0")
        assert any("hist-tree" in r.name for r in team.phase_records)

    def test_mpi_uses_allgather(self):
        team = Team(M16, 16)
        MPINewModel().accumulate_histograms(team, 256, "p0")
        assert any("allgather" in r.name for r in team.phase_records)

    def test_ccsas_histogram_cheaper_at_small_bins(self):
        """The paper's reason CC-SAS wins small data sets."""
        t_cc = Team(M16, 16)
        CCSASModel().accumulate_histograms(t_cc, 256, "p0")
        t_mpi = Team(M16, 16)
        MPINewModel().accumulate_histograms(t_mpi, 256, "p0")
        assert t_cc.elapsed_ns < t_mpi.elapsed_ns


class TestExchangeAndSamples:
    def _comm(self, p=16, b=4096.0):
        bm = np.full((p, p), b)
        return CommMatrices(bm, (bm > 0).astype(float))

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_exchange_advances_clock(self, name):
        team = Team(M16, 16)
        get_model(name).exchange(team, "x", self._comm())
        assert team.elapsed_ns > 0

    def test_exchange_for_sample_uses_sample_transport(self):
        team = Team(M16, 16)
        CCSASModel().exchange_for_sample(team, "dist", self._comm())
        # Remote reads generate no protocol transactions.
        assert team.counters[0].protocol_transactions == 0

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_gather_samples_runs(self, name):
        team = Team(M16, 16)
        get_model(name).gather_samples(team, 512.0, "spl")
        assert team.elapsed_ns > 0

    def test_ccsas_gather_only_leaders_busy(self):
        team = Team(M16, 16)
        CCSASModel().gather_samples(team, 512.0, "spl")
        busy = np.array([c.busy_ns for c in team.counters])
        assert busy[0] > 0
        assert np.all(busy[1:] == 0)  # one group of 16, leader is proc 0

    def test_mpi_gather_everyone_busy(self):
        team = Team(M16, 16)
        MPINewModel().gather_samples(team, 512.0, "spl")
        busy = np.array([c.busy_ns for c in team.counters])
        assert np.all(busy > 0)

    def test_repr(self):
        assert "ccsas" in repr(CCSASModel())
