"""Run-file integrity: framing, CRCs, atomic publish, and the three
``spill.*`` fault sites (docs/STREAM.md)."""

from __future__ import annotations

import errno
import os

import numpy as np
import pytest

from repro.faults import FaultPlan, use_fault_plan
from repro.stream import (
    RunCorrupt,
    RunReader,
    RunTruncated,
    RunWriter,
    StreamError,
    run_total_keys,
    write_run,
)


def _sorted_keys(seed: int, n: int = 10_000) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.sort(rng.integers(0, 1 << 40, size=n, dtype=np.int64))


class TestRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        keys = _sorted_keys(1)
        path = tmp_path / "a.run"
        spilled = write_run(path, keys, frame_keys=1024)
        assert spilled >= keys.nbytes
        with RunReader(path) as reader:
            got = reader.read_all()
        assert np.array_equal(got, keys)
        assert reader.total_keys == len(keys)

    @pytest.mark.parametrize("dtype", ["<i4", "<i8", "<u4", "<u8"])
    def test_every_supported_dtype(self, tmp_path, dtype):
        keys = np.sort(
            np.random.default_rng(2).integers(
                0, 100, size=777, dtype=np.dtype(dtype)
            )
        )
        path = tmp_path / "d.run"
        write_run(path, keys, frame_keys=100)
        with RunReader(path) as reader:
            got = reader.read_all()
        assert got.dtype == np.dtype(dtype)
        assert np.array_equal(got, keys)

    def test_frames_reblock_input(self, tmp_path):
        keys = _sorted_keys(3, 2_500)
        path = tmp_path / "f.run"
        with RunWriter(path, keys.dtype, frame_keys=1000) as w:
            # Two writes of awkward sizes still land as 1000-key frames.
            w.write(keys[:1_700])
            w.write(keys[1_700:])
        with RunReader(path) as reader:
            sizes = [len(f) for f in reader.frames()]
        assert sum(sizes) == len(keys)
        assert max(sizes) <= 1000

    def test_empty_run(self, tmp_path):
        path = tmp_path / "e.run"
        with RunWriter(path, np.int64) as w:
            pass
        assert run_total_keys(path) == 0
        with RunReader(path) as reader:
            assert len(reader.read_all()) == 0

    def test_run_total_keys_reads_footer(self, tmp_path):
        keys = _sorted_keys(4, 5_000)
        path = tmp_path / "t.run"
        write_run(path, keys, frame_keys=512)
        assert run_total_keys(path) == 5_000

    def test_unsupported_dtype_rejected(self, tmp_path):
        with pytest.raises(StreamError, match="unsupported run dtype"):
            RunWriter(tmp_path / "x.run", np.float64)


class TestIntegrity:
    def test_truncated_run_detected(self, tmp_path):
        keys = _sorted_keys(5)
        path = tmp_path / "trunc.run"
        write_run(path, keys, frame_keys=1024)
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(size - 37)
        with pytest.raises((RunTruncated, RunCorrupt)):
            with RunReader(path) as reader:
                reader.read_all()

    def test_on_disk_bit_flip_detected(self, tmp_path):
        keys = _sorted_keys(6)
        path = tmp_path / "rot.run"
        write_run(path, keys, frame_keys=1024)
        # Flip one bit in the middle of a frame payload on disk: the
        # CRC fails, the seek-back re-read sees the same rot, and the
        # reader must raise rather than merge garbage.
        with open(path, "r+b") as f:
            f.seek(os.path.getsize(path) // 2)
            byte = f.read(1)[0]
            f.seek(-1, os.SEEK_CUR)
            f.write(bytes([byte ^ 0x10]))
        with pytest.raises(RunCorrupt, match="CRC mismatch"):
            with RunReader(path) as reader:
                reader.read_all()

    def test_corrupt_footer_detected(self, tmp_path):
        keys = _sorted_keys(7, 100)
        path = tmp_path / "foot.run"
        write_run(path, keys)
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.seek(size - 10)  # inside the u64 total_keys
            f.write(b"\xff")
        with pytest.raises(RunCorrupt):
            run_total_keys(path)
        with pytest.raises(RunCorrupt, match="footer"):
            with RunReader(path) as reader:
                reader.read_all()

    def test_bad_magic_detected(self, tmp_path):
        path = tmp_path / "bad.run"
        path.write_bytes(b"NOPE" + b"\x00" * 64)
        with pytest.raises(RunCorrupt, match="bad magic"):
            RunReader(path)

    def test_abort_leaves_no_file(self, tmp_path):
        path = tmp_path / "gone.run"
        w = RunWriter(path, np.int64)
        w.write(_sorted_keys(8, 100))
        w.abort()
        assert list(tmp_path.iterdir()) == []

    def test_exception_in_context_drops_tmp(self, tmp_path):
        path = tmp_path / "ctx.run"
        with pytest.raises(RuntimeError, match="boom"):
            with RunWriter(path, np.int64) as w:
                w.write(_sorted_keys(9, 100))
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []

    def test_publish_is_atomic(self, tmp_path):
        """The final path must not exist until the footer is sealed."""
        path = tmp_path / "atomic.run"
        w = RunWriter(path, np.int64, frame_keys=64)
        w.write(_sorted_keys(10, 1_000))
        assert not path.exists()
        assert path.with_suffix(".run.tmp").exists()
        w.close()
        assert path.exists()
        assert not path.with_suffix(".run.tmp").exists()


class TestSpillFaults:
    def test_injected_enospc_is_retried(self, tmp_path):
        keys = _sorted_keys(11)
        plan = FaultPlan.scripted({"spill.enospc": [0]})
        with use_fault_plan(plan):
            write_run(tmp_path / "r.run", keys, frame_keys=1024)
        stats = plan.stats()
        assert stats.total_injected == 1
        assert stats.total_recovered == 1
        with RunReader(tmp_path / "r.run") as reader:
            assert np.array_equal(reader.read_all(), keys)
        # The retried attempt left no partial .tmp behind.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["r.run"]

    def test_persistent_enospc_exhausts_retries(self, tmp_path):
        keys = _sorted_keys(12, 1_000)
        plan = FaultPlan.scripted({"spill.enospc": [0, 1, 2, 3]})
        with use_fault_plan(plan):
            with pytest.raises(OSError) as excinfo:
                write_run(tmp_path / "never.run", keys, retries=2)
        assert excinfo.value.errno == errno.ENOSPC
        assert list(tmp_path.iterdir()) == []  # no orphan partials

    def test_injected_short_write_absorbed(self, tmp_path):
        keys = _sorted_keys(13)
        plan = FaultPlan.scripted({"spill.short_write": [0]})
        with use_fault_plan(plan):
            write_run(tmp_path / "s.run", keys, frame_keys=1024)
        stats = plan.stats()
        assert stats.total_injected == 1
        assert stats.total_recovered == 1
        with RunReader(tmp_path / "s.run") as reader:
            assert np.array_equal(reader.read_all(), keys)

    def test_injected_corrupt_read_recovers_on_reread(self, tmp_path):
        keys = _sorted_keys(14)
        write_run(tmp_path / "c.run", keys, frame_keys=1024)
        plan = FaultPlan.scripted({"spill.corrupt": [0]})
        with use_fault_plan(plan):
            with RunReader(tmp_path / "c.run") as reader:
                got = reader.read_all()
        assert np.array_equal(got, keys)
        stats = plan.stats()
        assert stats.total_injected == 1
        assert stats.total_recovered == 1
