"""The external-sort driver end to end: correctness far past the chunk
budget, output sinks, workdir hygiene, key conservation, and the spill
fault family under a live sort."""

from __future__ import annotations

import io
import os
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.faults import FaultPlan, use_fault_plan
from repro.stream import (
    WORKDIR_PREFIX,
    StreamError,
    external_sort,
)
from repro.verify import VerifyError


def _keys(seed: int, n: int, dtype=np.int64) -> np.ndarray:
    high = min(1 << 40, np.iinfo(dtype).max)
    return np.random.default_rng(seed).integers(
        0, high, size=n, dtype=dtype
    )


def _stream_workdirs() -> set[str]:
    tmp = Path(tempfile.gettempdir())
    return {p.name for p in tmp.glob(WORKDIR_PREFIX + "*")}


class TestCorrectness:
    def test_input_four_times_the_chunk_budget(self):
        """The acceptance-criteria shape: the input is >= 4x the
        configured arena (chunk budget), so the sort cannot shortcut
        through memory -- and the merged stream equals np.sort."""
        n = 1 << 18
        keys = _keys(1, n)
        blocks: list[np.ndarray] = []
        result = external_sort(
            keys, chunk_keys=n // 4, n_workers=1, on_block=blocks.append
        )
        assert result.runs == 4
        assert np.array_equal(np.concatenate(blocks), np.sort(keys))
        assert result.n_keys == n
        assert result.verified

    def test_multi_pass_merge_far_past_the_budget(self):
        n = 96_000
        keys = _keys(2, n)
        blocks: list[np.ndarray] = []
        result = external_sort(
            keys, chunk_keys=n // 12, fan_in=3, n_workers=1,
            frame_keys=1024, on_block=blocks.append,
        )
        assert result.runs == 12
        assert result.merge_passes >= 1
        assert np.array_equal(np.concatenate(blocks), np.sort(keys))

    @pytest.mark.parametrize("dtype", [np.int32, np.uint32, np.uint64])
    def test_other_dtypes(self, dtype):
        keys = _keys(3, 20_000, dtype)
        blocks: list[np.ndarray] = []
        result = external_sort(
            keys, chunk_keys=5_000, n_workers=1, on_block=blocks.append
        )
        out = np.concatenate(blocks)
        assert out.dtype == np.dtype(dtype)
        assert np.array_equal(out, np.sort(keys))
        assert result.dtype == np.dtype(dtype).str

    def test_uint64_beyond_int64_range(self):
        """uint64 keys past 2**63-1 cannot ride the signed radix
        kernels; the chunk sort must fall back without corrupting."""
        rng = np.random.default_rng(4)
        keys = rng.integers(
            1 << 62, (1 << 64) - 1, size=10_000, dtype=np.uint64
        )
        blocks: list[np.ndarray] = []
        external_sort(keys, chunk_keys=2_500, n_workers=1,
                      on_block=blocks.append)
        assert np.array_equal(np.concatenate(blocks), np.sort(keys))

    def test_file_roundtrip(self, tmp_path):
        keys = _keys(5, 30_000, np.uint32)
        src = tmp_path / "in.bin"
        dst = tmp_path / "out.bin"
        keys.astype("<u4").tofile(src)
        result = external_sort(
            src, dtype="<u4", chunk_keys=8_192, n_workers=1, out=dst
        )
        assert result.n_keys == len(keys)
        got = np.fromfile(dst, dtype="<u4")
        assert np.array_equal(got, np.sort(keys))

    def test_file_like_out(self):
        keys = _keys(6, 10_000)
        sink = io.BytesIO()
        external_sort(keys, chunk_keys=2_500, n_workers=1, out=sink)
        got = np.frombuffer(sink.getvalue(), dtype=np.int64)
        assert np.array_equal(got, np.sort(keys))

    def test_empty_source(self):
        result = external_sort(np.empty(0, np.int64), chunk_keys=1_024)
        assert result.n_keys == 0
        assert result.runs == 0

    def test_pooled_sort_matches(self):
        from repro.native.pool import WorkerPool

        n = 64_000
        keys = _keys(7, n)
        blocks: list[np.ndarray] = []
        with WorkerPool(2, supervise=True, phase_timeout_s=30.0) as pool:
            result = external_sort(
                keys, chunk_keys=n // 8, fan_in=4, pool=pool,
                on_block=blocks.append,
            )
        assert result.runs == 8
        assert np.array_equal(np.concatenate(blocks), np.sort(keys))

    def test_chunk_keys_validated(self):
        with pytest.raises(ValueError, match="chunk_keys"):
            external_sort(_keys(8, 16), chunk_keys=2)


class TestWorkdirHygiene:
    def test_workdir_removed_on_success(self):
        before = _stream_workdirs()
        external_sort(_keys(9, 8_000), chunk_keys=2_000, n_workers=1)
        assert _stream_workdirs() == before

    def test_workdir_removed_on_exception(self):
        before = _stream_workdirs()

        def explode(block):
            raise RuntimeError("consumer failed")

        with pytest.raises(RuntimeError, match="consumer failed"):
            external_sort(
                _keys(10, 8_000), chunk_keys=2_000, n_workers=1,
                on_block=explode,
            )
        assert _stream_workdirs() == before

    def test_explicit_workdir_hosts_spills(self, tmp_path):
        external_sort(
            _keys(11, 8_000), chunk_keys=2_000, n_workers=1,
            workdir=tmp_path,
        )
        # The per-sort subdirectory under it is removed afterwards.
        assert list(tmp_path.iterdir()) == []


class TestConservation:
    @pytest.mark.no_sanitize  # under --sanitize this raises VerifyError
    def test_lost_keys_raise_stream_error(self, monkeypatch):
        """If the spilled-run footers disagree with the ingest count the
        sort must fail loudly, not return short output."""
        import repro.stream.external as external_mod

        real = external_mod.run_total_keys
        monkeypatch.setattr(
            external_mod, "run_total_keys", lambda p: real(p) - 1
        )
        with pytest.raises(StreamError, match="conservation"):
            external_sort(_keys(12, 8_000), chunk_keys=2_000, n_workers=1)

    def test_sanitizer_counts_the_check(self, sanitizer):
        external_sort(_keys(13, 8_000), chunk_keys=2_000, n_workers=1)
        assert sanitizer.checks["stream.key-conservation"] == 1
        assert not sanitizer.violations

    def test_sanitizer_records_the_violation(self, monkeypatch, sanitizer):
        import repro.stream.external as external_mod

        real = external_mod.run_total_keys
        monkeypatch.setattr(
            external_mod, "run_total_keys", lambda p: real(p) + 2
        )
        with pytest.raises(VerifyError, match="stream.key-conservation"):
            external_sort(_keys(14, 8_000), chunk_keys=2_000, n_workers=1)
        assert sanitizer.violations


class TestFaultsUnderSort:
    def test_spill_family_recovered_inline(self):
        keys = _keys(15, 32_000)
        plan = FaultPlan.scripted(
            {
                "spill.enospc": [1],
                "spill.short_write": [3],
                "spill.corrupt": [2],
            }
        )
        blocks: list[np.ndarray] = []
        with use_fault_plan(plan):
            result = external_sort(
                keys, chunk_keys=4_000, fan_in=4, frame_keys=1024,
                n_workers=1, on_block=blocks.append,
            )
        assert np.array_equal(np.concatenate(blocks), np.sort(keys))
        stats = result.faults
        for site in ("spill.enospc", "spill.short_write", "spill.corrupt"):
            assert stats.injected.get(site, 0) >= 1, site
        assert stats.all_recovered

    @pytest.mark.chaos
    def test_chaos_stream_merge_scenario(self):
        """Worker kill pinned to the first merge-phase task plus the
        whole spill family: the canned scenario must pass (output ==
        np.sort, every fault recovered, merge-phase failure absorbed)."""
        from repro.faults.chaos import run_chaos

        out = io.StringIO()
        code = run_chaos(
            seed=0, small=True, stream=out, scenario="stream-merge"
        )
        assert code == 0, out.getvalue()
        assert "stream-merge" in out.getvalue()
