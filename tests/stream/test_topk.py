"""Continuous mode: the bounded top-k operator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream import StreamError, TopK, stream_topk


def _keys(seed: int, n: int) -> np.ndarray:
    return np.random.default_rng(seed).integers(
        0, 1 << 40, size=n, dtype=np.int64
    )


class TestTopK:
    def test_equals_sorted_tail(self):
        keys = _keys(1, 50_000)
        top = stream_topk(keys, 100, chunk_keys=3_000)
        assert np.array_equal(top, np.sort(keys)[-100:])

    def test_duplicate_heavy(self):
        keys = np.random.default_rng(2).integers(
            0, 8, size=20_000, dtype=np.int64
        )
        top = stream_topk(keys, 64, chunk_keys=1_000)
        assert np.array_equal(top, np.sort(keys)[-64:])

    def test_k_larger_than_stream(self):
        keys = _keys(3, 17)
        top = stream_topk(keys, 1_000)
        assert np.array_equal(top, np.sort(keys))

    def test_empty_stream(self):
        top = stream_topk(np.empty(0, np.int64), 10)
        assert len(top) == 0 and top.dtype == np.int64

    def test_memory_stays_bounded(self):
        op = TopK(16)
        for seed in range(20):
            op.push(_keys(seed, 5_000))
            assert len(op.result()) <= 16
        assert op.n_pushed == 100_000

    def test_incremental_matches_batch(self):
        parts = [_keys(seed, 2_000 + seed) for seed in range(5)]
        op = TopK(50)
        for part in parts:
            op.push(part)
        assert np.array_equal(
            op.result(), np.sort(np.concatenate(parts))[-50:]
        )

    def test_k_validated(self):
        with pytest.raises(ValueError, match="k must be"):
            TopK(0)

    def test_multidimensional_chunk_rejected(self):
        op = TopK(4)
        with pytest.raises(StreamError, match="one-dimensional"):
            op.push(np.zeros((2, 2), dtype=np.int64))
