"""Chunked ingest framings: arrays, iterables, paths, file-likes."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.stream import StreamError, iter_chunks


def _keys(seed: int, n: int, dtype=np.int64) -> np.ndarray:
    return np.random.default_rng(seed).integers(0, 1 << 30, size=n, dtype=dtype)


class TestArraySource:
    def test_slices_cover_input(self):
        keys = _keys(1, 10_050)
        chunks = list(iter_chunks(keys, 4_096))
        assert [len(c) for c in chunks] == [4_096, 4_096, 1_858]
        assert np.array_equal(np.concatenate(chunks), keys)

    def test_slices_are_zero_copy(self):
        keys = _keys(2, 1_000)
        chunks = list(iter_chunks(keys, 300))
        assert chunks[0].base is keys

    def test_two_dimensional_rejected(self):
        with pytest.raises(StreamError, match="one-dimensional"):
            list(iter_chunks(np.zeros((2, 2), dtype=np.int64), 4))

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(StreamError, match="unsupported key dtype"):
            list(iter_chunks(np.zeros(4, dtype=np.float32), 4))


class TestIterableSource:
    def test_reblocks_to_exact_chunks(self):
        parts = [_keys(seed, n) for seed, n in enumerate([700, 50, 3_000, 1])]
        chunks = list(iter_chunks(iter(parts), 1_024))
        # Every chunk but the last is exactly chunk_keys long.
        assert [len(c) for c in chunks[:-1]] == [1_024, 1_024, 1_024]
        assert sum(len(c) for c in chunks) == 3_751
        assert np.array_equal(
            np.concatenate(chunks), np.concatenate(parts)
        )

    def test_empty_parts_skipped(self):
        parts = [np.empty(0, np.int64), _keys(3, 10), np.empty(0, np.int64)]
        chunks = list(iter_chunks(parts, 1_024))
        assert len(chunks) == 1 and len(chunks[0]) == 10

    def test_dtype_enforced_across_parts(self):
        parts = [
            _keys(4, 10, np.int32),
            _keys(5, 10).astype(np.int64),  # widened to the declared dtype
        ]
        chunks = list(iter_chunks(parts, 1_024, dtype="<i4"))
        assert all(c.dtype == np.dtype("<i4") for c in chunks)


class TestRawByteSources:
    def test_path_source(self, tmp_path):
        keys = _keys(6, 5_000, np.uint32)
        path = tmp_path / "keys.bin"
        keys.astype("<u4").tofile(path)
        chunks = list(iter_chunks(path, 2_048, dtype="<u4"))
        assert np.array_equal(np.concatenate(chunks), keys)

    def test_file_like_source(self):
        keys = _keys(7, 3_000)
        fh = io.BytesIO(keys.astype("<i8").tobytes())
        chunks = list(iter_chunks(fh, 1_000, dtype="<i8"))
        assert [len(c) for c in chunks] == [1_000, 1_000, 1_000]
        assert np.array_equal(np.concatenate(chunks), keys)

    def test_dtype_required_for_paths(self, tmp_path):
        path = tmp_path / "keys.bin"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(StreamError, match="dtype is required"):
            iter_chunks(path, 8)

    def test_trailing_partial_key_rejected(self):
        fh = io.BytesIO(b"\x00" * 17)  # 2 whole int64 keys + 1 byte
        with pytest.raises(StreamError, match="ends mid-key"):
            list(iter_chunks(fh, 8, dtype="<i8"))


class TestValidation:
    def test_chunk_keys_must_be_positive(self):
        with pytest.raises(ValueError, match="chunk_keys"):
            iter_chunks(_keys(8, 4), 0)

    def test_unsupported_source_rejected(self):
        with pytest.raises(StreamError, match="unsupported stream source"):
            iter_chunks(object(), 8)
