"""K-way merge invariants: block order, multi-pass reduction, fan-in."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.faults import FaultPlan, use_fault_plan
from repro.stream import (
    RunReader,
    merge_iter,
    merge_to_run,
    reduce_runs,
    run_total_keys,
    write_run,
)


def _spill_runs(tmp_path, seed: int, n_runs: int, run_len: int = 5_000,
                frame_keys: int = 512, high: int = 1 << 40):
    """Write ``n_runs`` sorted runs; returns (paths, all concatenated)."""
    rng = np.random.default_rng(seed)
    paths, everything = [], []
    for i in range(n_runs):
        keys = np.sort(
            rng.integers(0, high, size=run_len + 7 * i, dtype=np.int64)
        )
        path = os.path.join(tmp_path, f"run_{i}.run")
        write_run(path, keys, frame_keys=frame_keys)
        paths.append(path)
        everything.append(keys)
    return paths, np.concatenate(everything)


class TestMergeIter:
    def test_merge_equals_sorted_union(self, tmp_path):
        paths, everything = _spill_runs(tmp_path, 1, 5)
        got = np.concatenate(list(merge_iter(paths)))
        assert np.array_equal(got, np.sort(everything))

    def test_blocks_stream_in_ascending_order(self, tmp_path):
        paths, _ = _spill_runs(tmp_path, 2, 4)
        prev_last = None
        for block in merge_iter(paths):
            assert np.all(block[1:] >= block[:-1])
            if prev_last is not None and len(block):
                assert block[0] >= prev_last
            if len(block):
                prev_last = block[-1]

    def test_duplicate_heavy_runs(self, tmp_path):
        # With only 16 distinct values every frame straddles ties; the
        # take-everything-<=-bound rule must not drop or double-count.
        paths, everything = _spill_runs(tmp_path, 3, 6, high=16)
        got = np.concatenate(list(merge_iter(paths)))
        assert np.array_equal(got, np.sort(everything))

    def test_single_run_passthrough(self, tmp_path):
        paths, everything = _spill_runs(tmp_path, 4, 1)
        got = np.concatenate(list(merge_iter(paths)))
        assert np.array_equal(got, np.sort(everything))

    def test_empty_runs_ignored(self, tmp_path):
        paths, everything = _spill_runs(tmp_path, 5, 2)
        empty = os.path.join(tmp_path, "empty.run")
        write_run(empty, np.empty(0, np.int64))
        got = np.concatenate(list(merge_iter([empty] + paths)))
        assert np.array_equal(got, np.sort(everything))


class TestMergeToRun:
    def test_merge_produces_valid_run(self, tmp_path):
        paths, everything = _spill_runs(tmp_path, 6, 3)
        out = os.path.join(tmp_path, "merged.run")
        bytes_read, bytes_written = merge_to_run(
            paths, out, frame_keys=512, dtype=np.dtype(np.int64)
        )
        assert bytes_read > 0 and bytes_written > 0
        assert run_total_keys(out) == len(everything)
        with RunReader(out) as reader:
            assert np.array_equal(reader.read_all(), np.sort(everything))

    def test_injected_enospc_retries_whole_merge(self, tmp_path):
        paths, everything = _spill_runs(tmp_path, 7, 3, run_len=2_000)
        out = os.path.join(tmp_path, "merged.run")
        plan = FaultPlan.scripted({"spill.enospc": [0]})
        with use_fault_plan(plan):
            merge_to_run(paths, out, frame_keys=512, dtype=np.dtype(np.int64))
        assert plan.stats().total_recovered == 1
        with RunReader(out) as reader:
            assert np.array_equal(reader.read_all(), np.sort(everything))
        assert not os.path.exists(out + ".tmp")


class TestReduceRuns:
    def test_multi_pass_reduction(self, tmp_path):
        paths, everything = _spill_runs(tmp_path, 8, 9, run_len=2_000)
        surviving, passes, bytes_read, bytes_written = reduce_runs(
            paths, fan_in=2, workdir=str(tmp_path),
            frame_keys=512, dtype=np.dtype(np.int64),
        )
        # 9 runs at fan-in 2: 9 -> 5 -> 3 -> 2, three passes.
        assert passes == 3
        assert len(surviving) <= 2
        assert bytes_read > 0 and bytes_written > 0
        got = np.concatenate(list(merge_iter(surviving)))
        assert np.array_equal(got, np.sort(everything))
        # Merged inputs are unlinked; only survivors remain on disk.
        remaining = {p for p in os.listdir(tmp_path) if p.endswith(".run")}
        assert remaining == {os.path.basename(p) for p in surviving}

    def test_no_pass_needed_under_fan_in(self, tmp_path):
        paths, _ = _spill_runs(tmp_path, 9, 3)
        surviving, passes, bytes_read, bytes_written = reduce_runs(
            paths, fan_in=4, workdir=str(tmp_path),
            frame_keys=512, dtype=np.dtype(np.int64),
        )
        assert passes == 0
        assert surviving == [os.fspath(p) for p in paths]
        assert bytes_read == bytes_written == 0

    def test_fan_in_validated(self, tmp_path):
        with pytest.raises(ValueError, match="fan_in"):
            reduce_runs(
                [], fan_in=1, workdir=str(tmp_path),
                frame_keys=512, dtype=np.dtype(np.int64),
            )
