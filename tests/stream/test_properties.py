"""Hypothesis properties at the stream seam.

For random chunk sizes, fan-in limits, frame sizes, and every paper
distribution (plus a duplicate-heavy one), the external sort must equal
``np.sort`` of the concatenated input and top-k must equal
``np.sort(...)[-k:]`` -- regardless of how the input was framed into
chunks, how many spill runs formed, or how many merge passes ran.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.distributions import PAPER_ORDER, generate
from repro.stream import external_sort, stream_topk

N = 4_096  # keys per example: divisible by p=4 as the generators need

DISTRIBUTIONS = PAPER_ORDER + ["duplicate"]


def _example_keys(name: str, seed: int) -> np.ndarray:
    if name == "duplicate":
        # Duplicate-heavy: 16 distinct values, so frames straddle ties.
        return np.random.default_rng(seed).integers(
            0, 16, size=N, dtype=np.int64
        )
    return generate(name, N, 4, seed=seed)


common = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestExternalSortProperty:
    @common
    @given(
        dist=st.sampled_from(DISTRIBUTIONS),
        seed=st.integers(min_value=1, max_value=1_000),
        chunk_keys=st.integers(min_value=200, max_value=3_000),
        fan_in=st.integers(min_value=2, max_value=5),
        frame_keys=st.sampled_from([64, 257, 1_024]),
    )
    def test_equals_np_sort(self, dist, seed, chunk_keys, fan_in, frame_keys):
        keys = _example_keys(dist, seed)
        blocks: list[np.ndarray] = []
        result = external_sort(
            keys,
            chunk_keys=chunk_keys,
            fan_in=fan_in,
            frame_keys=frame_keys,
            n_workers=1,
            on_block=blocks.append,
        )
        out = (
            np.concatenate(blocks)
            if blocks
            else np.empty(0, dtype=keys.dtype)
        )
        assert np.array_equal(out, np.sort(keys))
        assert result.n_keys == N
        assert result.runs == -(-N // chunk_keys)

    @common
    @given(
        dist=st.sampled_from(DISTRIBUTIONS),
        seed=st.integers(min_value=1, max_value=1_000),
        chunk_keys=st.integers(min_value=200, max_value=3_000),
        n_parts=st.integers(min_value=1, max_value=7),
    )
    def test_framing_is_irrelevant(self, dist, seed, chunk_keys, n_parts):
        """Feeding the same keys as an iterable of arbitrary part sizes
        must give the same answer as the contiguous array."""
        keys = _example_keys(dist, seed)
        cuts = np.linspace(0, N, n_parts + 1, dtype=int)
        parts = [keys[lo:hi] for lo, hi in zip(cuts, cuts[1:])]
        blocks: list[np.ndarray] = []
        external_sort(
            iter(parts),
            chunk_keys=chunk_keys,
            n_workers=1,
            on_block=blocks.append,
        )
        assert np.array_equal(np.concatenate(blocks), np.sort(keys))


class TestTopKProperty:
    @common
    @given(
        dist=st.sampled_from(DISTRIBUTIONS),
        seed=st.integers(min_value=1, max_value=1_000),
        chunk_keys=st.integers(min_value=200, max_value=3_000),
        k=st.integers(min_value=1, max_value=5_000),
    )
    def test_equals_sorted_tail(self, dist, seed, chunk_keys, k):
        keys = _example_keys(dist, seed)
        top = stream_topk(keys, k, chunk_keys=chunk_keys)
        expect = np.sort(keys)[-k:] if k <= N else np.sort(keys)
        assert np.array_equal(top, expect)
