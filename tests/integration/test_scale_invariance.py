"""Scale-extrapolation invariance: the modeled time of a labeled-size run
must not depend (much) on how large the functional sample was.

This is the property that justifies running the paper's 256M-key grid
cells on sub-million-key arrays: bytes scale exactly and chunk counts are
extrapolated by the support estimator, so two runs of the same labeled
cell at different sample sizes should model nearly the same time.
"""

import pytest

from repro.core.experiment import ExperimentRunner, RunSpec, SIZES

pytestmark = pytest.mark.integration


@pytest.mark.parametrize("model", ["ccsas", "shmem", "mpi-new"])
def test_radix_time_invariant_to_sample_size(model):
    runner = ExperimentRunner()
    times = []
    for max_actual in (1 << 15, 1 << 17):
        spec = RunSpec(
            "radix", model, SIZES["16M"], 64, 8, max_actual=max_actual
        )
        times.append(runner.run(spec).time_ns)
    assert times[0] == pytest.approx(times[1], rel=0.10), model


@pytest.mark.parametrize("dist", ["gauss", "half", "bucket"])
def test_radix_time_invariant_across_distributions(dist):
    runner = ExperimentRunner()
    times = []
    for max_actual in (1 << 15, 1 << 17):
        spec = RunSpec(
            "radix", "shmem", SIZES["16M"], 64, 8, dist, max_actual=max_actual
        )
        times.append(runner.run(spec).time_ns)
    assert times[0] == pytest.approx(times[1], rel=0.12), dist


def test_sample_sort_time_invariant(model="ccsas"):
    runner = ExperimentRunner()
    times = []
    for max_actual in (1 << 15, 1 << 17):
        spec = RunSpec(
            "sample", model, SIZES["16M"], 64, 11, max_actual=max_actual
        )
        times.append(runner.run(spec).time_ns)
    assert times[0] == pytest.approx(times[1], rel=0.10)


def test_high_radix_small_size_invariance():
    """The hardest case for the chunk estimator: sparse cells (1M labeled
    keys over 2**12 buckets at 64 processors)."""
    runner = ExperimentRunner()
    times = []
    for max_actual in (1 << 14, 1 << 17):
        spec = RunSpec(
            "radix", "shmem", SIZES["1M"], 64, 12, max_actual=max_actual
        )
        times.append(runner.run(spec).time_ns)
    assert times[0] == pytest.approx(times[1], rel=0.25)
