"""Tests for the paper's secondary mechanism choices.

Three implementation alternatives the paper discusses and decides between:

1. MPI message strategy (Section 3.1): one message per contiguous chunk
   (chosen) vs one packed message per destination with receiver-side
   reorganization ("similar to the NAS IS algorithm"; rejected as slower
   on this machine).
2. SHMEM get vs put (Section 3.1): get chosen because it deposits data in
   the requester's cache.
3. Page placement: the SPMD programs rely on first-touch partition-local
   pages; round-robin striping makes "local" phases remote.
"""

import numpy as np
import pytest

from repro.data import generate
from repro.machine import MachineConfig
from repro.models import MPINewModel, SHMEMModel
from repro.sorts import ParallelRadixSort

pytestmark = pytest.mark.integration

N_LAB = 1 << 26  # 64M labeled
SAMPLE = 1 << 16


def run(model, p=64, n_labeled=N_LAB, machine=None, radix=8):
    machine = machine or MachineConfig.origin2000(n_processors=p, scale=1)
    keys = generate("gauss", SAMPLE, p, radix=radix)
    return ParallelRadixSort(model, radix=radix).run(
        keys, n_procs=p, machine=machine, n_labeled=n_labeled
    )


class TestMPIMessageStrategy:
    def test_per_chunk_wins_at_large_sizes(self):
        """The paper: 'Our experiments show that the latter [message per
        chunk] performs better than the former on this machine.'"""
        per_chunk = run(MPINewModel(combine_messages=False))
        combined = run(MPINewModel(combine_messages=True))
        assert per_chunk.time_ns < combined.time_ns

    def test_combined_sends_fewer_messages(self):
        per_chunk = run(MPINewModel(combine_messages=False))
        combined = run(MPINewModel(combine_messages=True))
        assert (
            combined.report.merged().messages
            < per_chunk.report.merged().messages
        )

    def test_both_sort_correctly(self):
        for combine in (False, True):
            out = run(MPINewModel(combine_messages=combine), n_labeled=None)
            assert np.all(np.diff(out.sorted_keys) >= 0)


class TestSHMEMPutVsGet:
    def test_get_beats_put(self):
        """Get warms the requester's cache for the next pass."""
        get = run(SHMEMModel(op="get"))
        put = run(SHMEMModel(op="put"))
        assert get.time_ns < put.time_ns

    def test_put_costs_show_as_cold_reads(self):
        get = run(SHMEMModel(op="get"))
        put = run(SHMEMModel(op="put"))
        assert (
            put.report.merged().lmem_ns > get.report.merged().lmem_ns
        )

    def test_put_sorts_correctly(self):
        out = run(SHMEMModel(op="put"), n_labeled=None)
        assert np.all(np.diff(out.sorted_keys) >= 0)

    def test_invalid_op_rejected(self):
        with pytest.raises(ValueError):
            SHMEMModel(op="swap")


class TestPagePlacement:
    def test_round_robin_slower(self):
        ft = MachineConfig.origin2000(n_processors=64, scale=1)
        rr = ft.with_placement("round-robin")
        t_ft = run("shmem", machine=ft).time_ns
        t_rr = run("shmem", machine=rr).time_ns
        assert t_rr > 1.15 * t_ft

    def test_round_robin_charges_rmem(self):
        rr = MachineConfig.origin2000(n_processors=64, scale=1).with_placement(
            "round-robin"
        )
        out = run("shmem", machine=rr)
        base = run("shmem")
        assert out.report.merged().rmem_ns > base.report.merged().rmem_ns

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig.origin2000(64).with_placement("numa-magic")

    def test_single_node_round_robin_is_local(self):
        from repro.machine import partition_home

        m = MachineConfig(
            n_processors=2, procs_per_node=2, nodes_per_router=1,
            placement="round-robin",
        )
        assert partition_home(m).remote_fraction == 0.0
