"""Shared experiment runner for the paper-shape integration tests.

Session-scoped and memoizing, so every grid cell is simulated once no
matter how many assertions consult it.  ``MAX_ACTUAL`` keeps functional
arrays small; the performance model still sees the labeled sizes.
"""

import pytest

from repro.core.experiment import ExperimentRunner, RunSpec, SIZES

MAX_ACTUAL = 1 << 16


@pytest.fixture(scope="session")
def runner():
    return ExperimentRunner()


@pytest.fixture(scope="session")
def speedup(runner):
    def _speedup(algorithm, model, size, p, radix, distribution="gauss"):
        return runner.speedup(
            RunSpec(
                algorithm, model, SIZES[size], p, radix, distribution,
                max_actual=MAX_ACTUAL,
            )
        )

    return _speedup


@pytest.fixture(scope="session")
def run_time(runner):
    def _time(algorithm, model, size, p, radix, distribution="gauss"):
        return runner.run(
            RunSpec(
                algorithm, model, SIZES[size], p, radix, distribution,
                max_actual=MAX_ACTUAL,
            )
        ).time_ns

    return _time


@pytest.fixture(scope="session")
def report_of(runner):
    def _report(algorithm, model, size, p, radix, distribution="gauss"):
        return runner.run(
            RunSpec(
                algorithm, model, SIZES[size], p, radix, distribution,
                max_actual=MAX_ACTUAL,
            )
        ).report

    return _report
