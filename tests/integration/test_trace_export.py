"""Acceptance: ``python -m repro fig3 --trace-out trace.json`` writes a
valid Chrome-trace JSON that Perfetto / chrome://tracing can load."""

import json

from repro.__main__ import main


def test_fig3_trace_out_is_valid_chrome_trace(tmp_path, capsys):
    path = tmp_path / "trace.json"
    assert main(["fig3", "--small", "--trace-out", str(path)]) == 0
    capsys.readouterr()  # drop the (large) table output

    doc = json.loads(path.read_text())
    # JSON-object form of the Trace Event Format.
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"

    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert spans, "a fig3 run must produce complete ('X') spans"
    for e in spans:
        # Perfetto's loader requires these fields to be present & numeric.
        assert isinstance(e["name"], str) and e["name"]
        assert isinstance(e["pid"], int) and isinstance(e["tid"], int)
        assert e["ts"] >= 0 and e["dur"] >= 0

    # Named tracks: process metadata for the simulator track group.
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert any(m["name"] == "process_name" for m in meta)

    # Phase-level spans from every layer the grid exercises.
    cats = {e.get("cat") for e in doc["traceEvents"]}
    assert {"sim.phase", "sim.barrier", "model.exchange"} <= cats
