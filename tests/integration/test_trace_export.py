"""Acceptance: trace exports are valid Chrome-trace JSON that Perfetto /
chrome://tracing can load -- and structurally sound: well-formed events,
paired B/E spans, and (for single runs) monotone non-overlapping phase
spans per (pid, tid) track, on both backends."""

import json

import numpy as np

from repro.__main__ import main
from repro.core.api import sort
from repro.data import generate
from repro.trace.chrome import to_chrome_trace
from repro.verify import check_chrome_trace, check_trace_events


def test_fig3_trace_out_is_valid_chrome_trace(tmp_path, capsys):
    path = tmp_path / "trace.json"
    assert main(["fig3", "--small", "--trace-out", str(path)]) == 0
    capsys.readouterr()  # drop the (large) table output

    doc = json.loads(path.read_text())
    # JSON-object form of the Trace Event Format.
    assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"

    # Full structural validation; the recorder accumulated many runs
    # (each restarting its virtual clock), so per-track sequencing of
    # phase spans does not apply across runs.
    check_chrome_trace(doc, sequential=False)

    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert spans, "a fig3 run must produce complete ('X') spans"

    # Named tracks: process metadata for the simulator track group.
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    assert any(m["name"] == "process_name" for m in meta)

    # Phase-level spans from every layer the grid exercises.
    cats = {e.get("cat") for e in doc["traceEvents"]}
    assert {"sim.phase", "sim.barrier", "model.exchange"} <= cats


def test_single_sim_run_trace_is_track_monotone():
    keys = generate("gauss", 1024, 16)
    result = sort(keys, algorithm="radix", model="mpi-new", n_procs=16, trace=True)
    assert result.trace
    # One run, one clock: phase spans must be sequential per track.
    check_trace_events(result.trace, sequential=True)
    doc = to_chrome_trace(result.trace)
    cats = {e.get("cat") for e in doc["traceEvents"]}
    assert {"sim.phase", "sim.barrier"} <= cats
    # Every simulated processor got its own track of phase spans.
    tids = {
        e["tid"] for e in doc["traceEvents"]
        if e.get("cat") == "sim.phase"
    }
    assert tids == set(range(16))


def test_single_native_run_trace_is_track_monotone():
    keys = np.arange(2048, dtype=np.int64)[::-1].copy()
    result = sort(keys, algorithm="radix", backend="native", n_procs=2, trace=True)
    assert result.trace
    check_trace_events(result.trace, sequential=True)
    cats = {e.cat for e in result.trace}
    assert {"native.phase", "native.task", "native.sort"} <= cats
