"""Integration tests: the paper's qualitative results must reproduce.

Each test asserts one claim from the paper's evaluation (Section 4) on a
reduced grid.  Absolute numbers are not asserted -- who wins, rough
factors and crossovers are (DESIGN.md Section 5).
"""

import pytest

from repro.core.experiment import SIZES

pytestmark = pytest.mark.integration


class TestTable1Baseline:
    def test_sequential_times_within_factor_two_of_paper(self, runner):
        from repro.report.experiments import PAPER_TABLE1_US

        for label, paper_us in PAPER_TABLE1_US.items():
            seq_us = runner.sequential(SIZES[label]).time_ns / 1e3
            assert 0.5 < seq_us / paper_us < 2.0, label

    def test_per_key_time_grows_with_size(self, runner):
        per_key_1m = runner.sequential(SIZES["1M"]).ns_per_key
        per_key_64m = runner.sequential(SIZES["64M"]).ns_per_key
        assert per_key_64m > per_key_1m


class TestFigure1MPIImplementations:
    def test_new_beats_sgi_everywhere(self, speedup):
        for size in ("1M", "64M"):
            for p in (16, 64):
                assert speedup("radix", "mpi-new", size, p, 8) > speedup(
                    "radix", "mpi-sgi", size, p, 8
                )

    def test_gap_widens_with_processors(self, speedup):
        gap16 = speedup("radix", "mpi-new", "1M", 16, 8) / speedup(
            "radix", "mpi-sgi", "1M", 16, 8
        )
        gap64 = speedup("radix", "mpi-new", "1M", 64, 8) / speedup(
            "radix", "mpi-sgi", "1M", 64, 8
        )
        assert gap64 > gap16


class TestFigure2SampleMPI:
    def test_new_beats_sgi(self, speedup):
        for size in ("1M", "64M"):
            assert speedup("sample", "mpi-new", size, 64, 11) > speedup(
                "sample", "mpi-sgi", size, 64, 11
            )

    def test_gap_smaller_than_radix(self, speedup):
        """Sample sort has one communication phase and two local sorts, so
        the MPI implementation matters less (Section 4.1)."""
        radix_gap = speedup("radix", "mpi-new", "64M", 64, 8) / speedup(
            "radix", "mpi-sgi", "64M", 64, 8
        )
        sample_gap = speedup("sample", "mpi-new", "64M", 64, 11) / speedup(
            "sample", "mpi-sgi", "64M", 64, 11
        )
        assert sample_gap < radix_gap


class TestFigure3RadixModels:
    def test_shmem_best_at_large_sizes(self, run_time):
        for size in ("16M", "64M"):
            t_shmem = run_time("radix", "shmem", size, 64, 8)
            for other in ("ccsas", "ccsas-new", "mpi-new", "mpi-sgi"):
                assert t_shmem < run_time("radix", other, size, 64, 8), (size, other)

    def test_ccsas_best_at_1m_high_p(self, run_time):
        """The paper's exception: CC-SAS wins the smallest data set."""
        t_cc = run_time("radix", "ccsas", "1M", 64, 8)
        for other in ("ccsas-new", "mpi-new", "mpi-sgi", "shmem"):
            assert t_cc < run_time("radix", other, "1M", 64, 8), other

    def test_ccsas_new_inferior_to_original_at_1m(self, run_time):
        """Section 4.2.1: buffering costs more than it saves at 1M keys."""
        assert run_time("radix", "ccsas-new", "1M", 64, 8) > run_time(
            "radix", "ccsas", "1M", 64, 8
        )

    def test_ccsas_collapses_at_large_sizes(self, speedup):
        """The original CC-SAS program's scattered remote writes: far below
        SHMEM at 64M (factor ~3 in the paper)."""
        ratio = speedup("radix", "shmem", "64M", 64, 8) / speedup(
            "radix", "ccsas", "64M", 64, 8
        )
        assert ratio > 2.0

    def test_ccsas_new_recovers_most_of_the_gap(self, speedup):
        s_new = speedup("radix", "ccsas-new", "64M", 64, 8)
        s_old = speedup("radix", "ccsas", "64M", 64, 8)
        s_shmem = speedup("radix", "shmem", "64M", 64, 8)
        assert s_old < s_new < s_shmem

    def test_superlinear_speedups_at_16m_and_up(self, speedup):
        """Capacity-induced superlinearity (the paper reports ~2x)."""
        for size in ("16M", "64M"):
            assert speedup("radix", "shmem", size, 64, 8) > 64

    def test_no_superlinearity_at_1m(self, speedup):
        assert speedup("radix", "shmem", "1M", 64, 8) < 64

    def test_mpi_between_ccsas_and_shmem_at_64m(self, speedup):
        s = {
            m: speedup("radix", m, "64M", 64, 8)
            for m in ("ccsas", "mpi-new", "shmem")
        }
        assert s["ccsas"] < s["mpi-new"] < s["shmem"]


class TestFigure4Breakdown:
    def test_ccsas_dominated_by_mem(self, report_of):
        rep = report_of("radix", "ccsas", "64M", 64, 8)
        fr = rep.category_fractions()
        assert fr["LMEM"] + fr["RMEM"] > 0.5

    def test_shmem_dominated_by_busy(self, report_of):
        fr = report_of("radix", "shmem", "64M", 64, 8).category_fractions()
        assert fr["BUSY"] > 0.5

    def test_mpi_sync_exceeds_shmem_sync(self, report_of):
        mpi = report_of("radix", "mpi-new", "64M", 64, 8).category_means_ns()
        shm = report_of("radix", "shmem", "64M", 64, 8).category_means_ns()
        assert mpi["SYNC"] > 1.5 * shm["SYNC"]

    def test_ccsas_mem_absolute_exceeds_others(self, report_of):
        cc = report_of("radix", "ccsas", "64M", 64, 8).category_means_ns()
        shm = report_of("radix", "shmem", "64M", 64, 8).category_means_ns()
        assert cc["LMEM"] + cc["RMEM"] > 3 * (shm["LMEM"] + shm["RMEM"])


class TestFigure5RadixDistributions:
    def test_local_is_best(self, run_time):
        for size in ("1M", "64M"):
            t_local = run_time("radix", "shmem", size, 64, 8, "local")
            for d in ("gauss", "random", "bucket", "remote"):
                assert t_local < run_time("radix", "shmem", size, 64, 8, d)

    def test_realistic_distributions_similar(self, run_time):
        base = run_time("radix", "shmem", "16M", 64, 8, "gauss")
        for d in ("random", "zero", "bucket", "stagger"):
            rel = run_time("radix", "shmem", "16M", 64, 8, d) / base
            assert 0.8 < rel < 1.2, d

    def test_remote_gains_at_256m(self, run_time):
        """Section 4.2.2: remote counter-intuitively beats gauss at 256M
        via spatial locality in the local permutation."""
        rel_256 = run_time("radix", "shmem", "256M", 64, 8, "remote") / run_time(
            "radix", "shmem", "256M", 64, 8, "gauss"
        )
        rel_16 = run_time("radix", "shmem", "16M", 64, 8, "remote") / run_time(
            "radix", "shmem", "16M", 64, 8, "gauss"
        )
        assert rel_256 < rel_16
        assert rel_256 < 1.0


class TestFigure6RadixSize:
    def test_small_radix_wins_small_sizes(self, run_time):
        """At 1M, extra passes beat extra messages: r<=8 beats r=12."""
        assert run_time("radix", "shmem", "1M", 64, 8) < run_time(
            "radix", "shmem", "1M", 64, 12
        )

    def test_large_radix_wins_large_sizes(self, run_time):
        assert run_time("radix", "shmem", "256M", 64, 12) < run_time(
            "radix", "shmem", "256M", 64, 8
        )

    def test_optimal_radix_grows_with_size(self, run_time):
        def best(size):
            return min(range(6, 13), key=lambda r: run_time("radix", "shmem", size, 64, r))

        assert best("1M") <= 8
        assert best("256M") >= 11

    def test_radix8_good_everywhere(self, run_time):
        """'The performance of radix 8 is quite good across all the data
        set sizes' -- within 1.6x of the best."""
        for size in ("1M", "16M", "256M"):
            times = {r: run_time("radix", "shmem", size, 64, r) for r in range(6, 13)}
            assert times[8] < 1.6 * min(times.values()), size


class TestFigure7SampleModels:
    def test_ccsas_best_at_small_sizes(self, run_time):
        t_cc = run_time("sample", "ccsas", "1M", 64, 11)
        for other in ("mpi-new", "mpi-sgi", "shmem"):
            assert t_cc < run_time("sample", other, "1M", 64, 11)

    def test_ccsas_similar_to_shmem_at_large(self, run_time):
        t_cc = run_time("sample", "ccsas", "64M", 64, 11)
        t_shm = run_time("sample", "shmem", "64M", 64, 11)
        assert abs(t_cc - t_shm) / t_shm < 0.15

    def test_mpi_behind(self, run_time):
        for size in ("1M", "64M"):
            t_mpi = run_time("sample", "mpi-new", size, 64, 11)
            assert t_mpi > run_time("sample", "ccsas", size, 64, 11)


class TestFigure8SampleBreakdown:
    def test_busy_fraction_exceeds_radix(self, report_of):
        """Two local sorts: BUSY dominates more than in radix sort."""
        sample_busy = report_of("sample", "shmem", "64M", 64, 11).category_fractions()["BUSY"]
        assert sample_busy > 0.55

    def test_models_closer_than_radix(self, report_of):
        s_tot = [
            report_of("sample", m, "64M", 64, 11).total_time_ns
            for m in ("ccsas", "mpi-new", "shmem")
        ]
        r_tot = [
            report_of("radix", m, "64M", 64, 8).total_time_ns
            for m in ("ccsas", "mpi-new", "shmem")
        ]
        assert max(s_tot) / min(s_tot) < max(r_tot) / min(r_tot)


class TestFigure9SampleDistributions:
    def test_local_best(self, run_time):
        t_local = run_time("sample", "ccsas", "256M", 64, 11, "local")
        for d in ("gauss", "random", "zero"):
            assert t_local < run_time("sample", "ccsas", "256M", 64, 11, d)

    def test_zero_not_catastrophic(self, run_time):
        """Duplicate splitters must be balanced (10% equal keys)."""
        rel = run_time("sample", "ccsas", "64M", 64, 11, "zero") / run_time(
            "sample", "ccsas", "64M", 64, 11, "gauss"
        )
        assert rel < 1.3

    def test_locality_effect_grows_with_size(self, run_time):
        rel_1m = run_time("sample", "ccsas", "1M", 64, 11, "local") / run_time(
            "sample", "ccsas", "1M", 64, 11, "gauss"
        )
        rel_256m = run_time("sample", "ccsas", "256M", 64, 11, "local") / run_time(
            "sample", "ccsas", "256M", 64, 11, "gauss"
        )
        assert rel_256m < rel_1m


class TestFigure10SampleRadixSize:
    def test_r11_beats_small_radixes(self, run_time):
        for r in (6, 7, 8):
            assert run_time("sample", "ccsas", "16M", 64, 11) < run_time(
                "sample", "ccsas", "16M", 64, r
            )

    def test_best_to_worst_within_factor_two(self, run_time):
        times = [run_time("sample", "ccsas", "16M", 64, r) for r in range(6, 13)]
        assert max(times) / min(times) < 2.1


class TestTables2And3Conclusions:
    def test_sample_wins_small_radix_wins_large_at_64p(self, run_time):
        """'sample sort is better than radix sort up to 64K integers per
        processor ... and becomes worse after that point' -- at 64
        processors our crossover sits at 1M total keys (16K/proc)."""
        best_radix_1m = min(
            run_time("radix", m, "1M", 64, 8)
            for m in ("ccsas", "ccsas-new", "shmem", "mpi-new")
        )
        best_sample_1m = min(
            run_time("sample", m, "1M", 64, 11) for m in ("ccsas", "shmem", "mpi-new")
        )
        assert best_sample_1m < best_radix_1m

        best_radix_64m = min(
            run_time("radix", m, "64M", 64, 8)
            for m in ("ccsas", "ccsas-new", "shmem", "mpi-new")
        )
        best_sample_64m = min(
            run_time("sample", m, "64M", 64, 11) for m in ("ccsas", "shmem", "mpi-new")
        )
        assert best_radix_64m < best_sample_64m

    def test_radix_wins_1m_at_16p(self, run_time):
        """At 16 processors (64K keys/proc) radix already wins 1M, as in
        the paper's Table 2 (63.2ms vs 74.3ms)."""
        assert run_time("radix", "ccsas", "1M", 16, 8) < run_time(
            "sample", "ccsas", "1M", 16, 11
        )

    def test_headline_combinations(self, run_time):
        """'The best combination is sample sort under CC-SAS for smaller
        data sets and radix sort under SHMEM for larger data sets.'"""
        cells_1m = {
            ("sample", "ccsas"): run_time("sample", "ccsas", "1M", 64, 11),
            ("radix", "shmem"): run_time("radix", "shmem", "1M", 64, 8),
            ("radix", "mpi-new"): run_time("radix", "mpi-new", "1M", 64, 8),
            ("sample", "mpi-new"): run_time("sample", "mpi-new", "1M", 64, 11),
        }
        assert min(cells_1m, key=cells_1m.get) == ("sample", "ccsas")
        cells_64m = {
            ("sample", "ccsas"): run_time("sample", "ccsas", "64M", 64, 11),
            ("radix", "shmem"): run_time("radix", "shmem", "64M", 64, 8),
            ("radix", "mpi-new"): run_time("radix", "mpi-new", "64M", 64, 8),
            ("sample", "shmem"): run_time("sample", "shmem", "64M", 64, 11),
        }
        assert min(cells_64m, key=cells_64m.get) == ("radix", "shmem")
