"""Table 1: sequential radix-sort execution times (Gauss keys)."""

from repro.report import table1


def test_table1_sequential(benchmark, runner, save):
    res = benchmark.pedantic(lambda: table1(runner), rounds=1, iterations=1)
    save(res)
    # Times grow monotonically with the data set.
    values = [res.data[k] for k in ("1M", "4M", "16M", "64M", "256M")]
    assert values == sorted(values)
