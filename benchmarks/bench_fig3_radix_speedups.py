"""Figure 3: radix-sort speedups under SHMEM / CC-SAS / MPI / CC-SAS-NEW."""

from repro.report import figure3


def test_fig3_radix_speedups(benchmark, runner, save):
    res = benchmark.pedantic(lambda: figure3(runner), rounds=1, iterations=1)
    save(res)
    big = res.data["64M/64p"]
    assert big["shmem"] == max(big.values())
    assert big["ccsas"] == min(big.values())
    assert res.data["1M/64p"]["ccsas"] == max(res.data["1M/64p"].values())
