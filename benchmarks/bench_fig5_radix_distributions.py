"""Figure 5: radix-sort relative time across key distributions (SHMEM)."""

from repro.report import figure5


def test_fig5_radix_distributions(benchmark, runner, save):
    res = benchmark.pedantic(lambda: figure5(runner), rounds=1, iterations=1)
    save(res)
    for size, row in res.data.items():
        assert row["local"] == min(row.values()), size
