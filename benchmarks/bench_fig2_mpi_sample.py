"""Figure 2: sample-sort speedups under the two MPI implementations."""

from repro.report import figure2


def test_fig2_mpi_sample(benchmark, runner, save):
    res = benchmark.pedantic(lambda: figure2(runner), rounds=1, iterations=1)
    save(res)
    for cell in res.data.values():
        assert cell["mpi-new"] > cell["mpi-sgi"]
