"""Figure 6: effect of radix size on radix sort (SHMEM, 64 processors)."""

from repro.report import figure6


def test_fig6_radix_size(benchmark, runner, save):
    res = benchmark.pedantic(lambda: figure6(runner), rounds=1, iterations=1)
    save(res)
    best = {
        size: min(row, key=row.get) for size, row in res.data.items()
    }
    assert best["1M"] in ("r=7", "r=8")
    assert best["256M"] in ("r=11", "r=12")
