#!/usr/bin/env python
"""Diff two experiment-results JSON files (``--json`` output, e.g. the
checked-in ``BENCH_0.json``/``BENCH_1.json`` baselines vs. a fresh run).

Values are compared per experiment id over the shared numeric leaves of
``data`` (dotted paths).  Wall-clock keys (anything containing
``wall_s``) are never diffed against a tolerance -- they are machine
dependent -- and neither are predictor error measures (``rel_err``,
``abs_rel``): those are near-zero quantities whose relative drift is
meaningless and which the error-band gate bounds absolutely instead.
The predictor's sweep latency can be given an absolute budget, and
predictor error bands a gate:

    python benchmarks/compare.py benchmarks/BENCH_0.json fresh.json
    python benchmarks/compare.py benchmarks/BENCH_1.json fresh.json \
        --rtol 0.25 --predict-budget 20

The serve load test (``BENCH_2.json``) is never diffed — its
throughput, latency, and job counts depend on the machine and on load —
but ``--serve`` (or the mere presence of a ``serve_loadgen`` result)
enforces its absolute invariants: correct results, no client errors,
and zero steady-state shared-memory creates/attaches:

    python benchmarks/compare.py benchmarks/BENCH_2.json fresh.json --serve

The native hot-path bench (``BENCH_3.json``) is likewise never diffed —
its wall clocks and speedup ratios are machine dependent — but
``--native`` (or the presence of a ``native_path`` result) enforces its
absolute invariants: every sort's output matched ``np.sort``, and the
engineered radix kernel beat the seed-equivalent ``naive`` kernel at
every cell with n >= 2^22 (see docs/PERF.md):

    python benchmarks/compare.py benchmarks/BENCH_3.json fresh.json --native

Exit code 0 iff every shared value is within tolerance and every
requested budget/gate holds.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

#: ``repro check --backend predict`` enforces the same gate; keep in sync
#: with repro.verify.differential.PREDICT_ERROR_GATE.
PREDICT_ERROR_GATE = 0.15

#: Leaf-path fragments excluded from the relative drift diff: wall
#: clocks are machine dependent, and predictor error measures are
#: near-zero values gated absolutely by :func:`check_predict`.
SKIP_FRAGMENTS = ("wall_s", "rel_err", "abs_rel")

#: Experiments excluded from the drift diff entirely: the serve load
#: test's throughput/latency/job counts are machine- and load-dependent
#: by nature (gated by :func:`check_serve`), the native hot-path
#: bench's speedup ratios likewise vary with the host (gated by
#: :func:`check_native`), and the out-of-core stream bench's MB/s
#: depends on the host's disk and core count (gated absolutely by
#: :func:`check_stream`).
SKIP_EXPERIMENTS = ("serve_loadgen", "native_path", "stream_path",
                    "machine_zoo")

#: Coverage floors for the machine-zoo sweep (benchmarks/BENCH_5.json):
#: every zoo machine and every workload kind must appear, with every
#: cell's output verified against NumPy.  Simulated times depend on the
#: zoo's cost parameters and are deliberately not diffed.
ZOO_MIN_MACHINES = 4
ZOO_MIN_WORKLOADS = 6

#: The engineered-vs-seed radix gate only applies from this input size
#: up: below it the fixed per-pass overheads dominate and the ratio is
#: noise.  Keep in sync with native_path's ``gate_min_n``.
NATIVE_GATE_MIN_N = 1 << 22

#: Absolute external-sort throughput floor for ``check_stream``, in
#: MB/s per cell.  Deliberately far below the ~28-47 MB/s measured on a
#: single-core dev box (benchmarks/BENCH_4.json): the gate exists to
#: catch a pathological merge regression (the key-at-a-time degenerate
#: merge ran at ~0.4 MB/s), not to pin machine-dependent disk speed.
STREAM_FLOOR_MB_S = 4.0


def numeric_leaves(value, prefix=""):
    """Flatten nested dicts/lists into {dotted.path: float}."""
    out = {}
    if isinstance(value, dict):
        for k, v in value.items():
            out.update(numeric_leaves(v, f"{prefix}{k}." if prefix or k else k))
    elif isinstance(value, list):
        for i, v in enumerate(value):
            out.update(numeric_leaves(v, f"{prefix}{i}."))
    elif isinstance(value, (int, float)) and not isinstance(value, bool):
        out[prefix.rstrip(".")] = float(value)
    return out


def load_results(path):
    with open(path) as fh:
        doc = json.load(fh)
    return {r["exp_id"]: r for r in doc.get("results", [])}


def diff_shared(baseline, current, rtol):
    """Yield (exp_id, path, base, cur, rel) for out-of-tolerance leaves."""
    for exp_id in sorted(set(baseline) & set(current)):
        if exp_id in SKIP_EXPERIMENTS:
            continue  # gated absolutely, not diffed (see SKIP_EXPERIMENTS)
        base = numeric_leaves(baseline[exp_id].get("data", {}))
        cur = numeric_leaves(current[exp_id].get("data", {}))
        for path in sorted(set(base) & set(cur)):
            if any(fragment in path for fragment in SKIP_FRAGMENTS):
                continue  # see SKIP_FRAGMENTS; budget/gate cover these
            b, c = base[path], cur[path]
            if b == c:
                continue
            scale = max(abs(b), abs(c))
            rel = abs(c - b) / scale if scale > 0 else math.inf
            if rel > rtol:
                yield exp_id, path, b, c, rel


def check_predict(current, budget):
    """Enforce the predictor's latency budget and error gate on every
    predict_compare result in ``current``.  Yields failure strings."""
    result = current.get("predict_compare")
    if result is None:
        yield "no predict_compare result in current file"
        return
    data = result.get("data", {})
    band = data.get("band", {})
    latency = data.get("latency", {})
    median = band.get("median_abs_rel")
    if median is None:
        yield "predict_compare has no error band"
    elif median > PREDICT_ERROR_GATE:
        yield (
            f"predictor median |rel error| {median:.2%} exceeds the "
            f"{PREDICT_ERROR_GATE:.0%} gate"
        )
    wall = latency.get("predict_wall_s")
    if budget is not None:
        if wall is None:
            yield "predict_compare has no predicted sweep latency"
        elif wall > budget:
            yield (
                f"predicted sweep took {wall:.2f}s for "
                f"{latency.get('n_cells', '?')} cells, over the "
                f"{budget:.1f}s budget"
            )


def check_serve(current):
    """Enforce the serve load test's absolute invariants on ``current``:
    work was done, every result was correct, no client errored, and the
    steady-state path performed no shared-memory creates or attaches.
    Throughput and latency are machine dependent and deliberately not
    gated.  Yields failure strings."""
    result = current.get("serve_loadgen")
    if result is None:
        yield "no serve_loadgen result in current file"
        return
    data = result.get("data", {})
    jobs = data.get("jobs", {})
    steady = data.get("steady_state", {})
    if not jobs.get("completed"):
        yield "serve_loadgen completed no jobs"
    if jobs.get("incorrect", 1) != 0:
        yield f"serve_loadgen: {jobs.get('incorrect')} incorrect result(s)"
    if jobs.get("errors", 1) != 0:
        yield f"serve_loadgen: {jobs.get('errors')} client error(s)"
    for counter in ("shm_creates", "shm_attaches"):
        if steady.get(counter) != 0:
            yield (
                f"serve_loadgen: steady-state {counter}="
                f"{steady.get(counter)!r}, expected 0 (the arena must "
                "remove per-job shared-memory traffic)"
            )


def check_native(current):
    """Enforce the native hot-path bench's absolute invariants on
    ``current``: every cell's outputs matched ``np.sort``, and the
    engineered radix kernel beat the seed-equivalent ``naive`` kernel at
    every cell with n >= NATIVE_GATE_MIN_N.  Raw wall clocks are machine
    dependent and deliberately not gated.  Yields failure strings."""
    result = current.get("native_path")
    if result is None:
        yield "no native_path result in current file"
        return
    data = result.get("data", {})
    cells = data.get("cells", {})
    if not cells:
        yield "native_path has no cells"
        return
    gated = 0
    for label, cell in sorted(cells.items()):
        if cell.get("verified") != 1:
            yield f"native_path: cell {label} output did not match np.sort"
        if cell.get("n", 0) >= NATIVE_GATE_MIN_N:
            gated += 1
            speedup = cell.get("radix_speedup_vs_seed", 0.0)
            if not speedup > 1.0:
                yield (
                    f"native_path: cell {label} engineered radix is not "
                    f"faster than the seed kernel "
                    f"(speedup {speedup:.2f}x <= 1.00x)"
                )
    if gated == 0:
        yield (
            f"native_path: no cell reaches the n >= {NATIVE_GATE_MIN_N} "
            "gate (run without --small to produce gated sizes)"
        )


def check_stream(current):
    """Enforce the out-of-core stream bench's absolute invariants on
    ``current``: every cell's streamed output matched ``np.sort`` (zero
    incorrect keys), every cell actually spilled runs and merged (no
    in-memory shortcut), and throughput stayed at or above the
    :data:`STREAM_FLOOR_MB_S` floor.  Raw MB/s is machine dependent and
    deliberately not diffed.  Yields failure strings."""
    result = current.get("stream_path")
    if result is None:
        yield "no stream_path result in current file"
        return
    data = result.get("data", {})
    cells = data.get("cells", {})
    if not cells:
        yield "stream_path has no cells"
        return
    merged = 0
    for label, cell in sorted(cells.items()):
        if cell.get("verified") != 1:
            yield f"stream_path: cell {label} output did not match np.sort"
        if cell.get("incorrect", 1) != 0:
            yield (
                f"stream_path: cell {label} has "
                f"{cell.get('incorrect')} incorrect key(s)"
            )
        if cell.get("runs", 0) < 2:
            yield (
                f"stream_path: cell {label} spilled "
                f"{cell.get('runs')} run(s); the bench must exercise "
                "the external path (>= 2 runs)"
            )
        if cell.get("merge_passes", 0) >= 1:
            merged += 1
        throughput = cell.get("throughput_mb_s", 0.0)
        if throughput < STREAM_FLOOR_MB_S:
            yield (
                f"stream_path: cell {label} sorted at "
                f"{throughput:.1f} MB/s, under the "
                f"{STREAM_FLOOR_MB_S:.1f} MB/s floor"
            )
    if merged == 0:
        yield (
            "stream_path: no cell performed an intermediate merge pass "
            "(fan-in never exceeded; the bench must exercise multi-pass "
            "merging)"
        )


def check_zoo(current):
    """Enforce the machine-zoo sweep's absolute invariants on
    ``current``: every cell verified against NumPy, and full coverage of
    the zoo (>= ZOO_MIN_MACHINES machines x ZOO_MIN_WORKLOADS workload
    kinds, both algorithms).  Simulated times depend on each machine's
    cost parameters and are deliberately not diffed.  Yields failure
    strings."""
    result = current.get("machine_zoo")
    if result is None:
        yield "no machine_zoo result in current file"
        return
    data = result.get("data", {})
    cells = data.get("cells", {})
    if not cells:
        yield "machine_zoo has no cells"
        return
    machines, workloads, algorithms = set(), set(), set()
    for label, cell in sorted(cells.items()):
        machines.add(cell.get("machine"))
        workloads.add(cell.get("workload"))
        algorithms.add(cell.get("algorithm"))
        if cell.get("verified") != 1:
            yield (
                f"machine_zoo: cell {label} output did not match "
                "np.sort/np.argsort"
            )
        if cell.get("time_ns", 0) <= 0:
            yield f"machine_zoo: cell {label} accumulated no simulated time"
    if len(machines) < ZOO_MIN_MACHINES:
        yield (
            f"machine_zoo: only {len(machines)} machine(s) covered "
            f"({', '.join(sorted(m for m in machines if m))}); "
            f"need >= {ZOO_MIN_MACHINES}"
        )
    if len(workloads) < ZOO_MIN_WORKLOADS:
        yield (
            f"machine_zoo: only {len(workloads)} workload kind(s) covered; "
            f"need >= {ZOO_MIN_WORKLOADS}"
        )
    if algorithms != {"radix", "sample"}:
        yield (
            f"machine_zoo: algorithms covered: "
            f"{', '.join(sorted(a for a in algorithms if a))}; "
            "need both radix and sample"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline results JSON")
    parser.add_argument("current", help="freshly generated results JSON")
    parser.add_argument(
        "--rtol", type=float, default=0.05,
        help="relative tolerance for shared numeric values (default 0.05)",
    )
    parser.add_argument(
        "--predict-budget", type=float, default=None, metavar="SECONDS",
        help="also enforce the predicted sweep's wall-clock budget and "
        "error gate on the current file's predict_compare result",
    )
    parser.add_argument(
        "--native", action="store_true",
        help="require and enforce the native hot-path invariants "
        "(verified outputs, engineered radix faster than the seed "
        "kernel at n >= 2^22) on the current file; also enforced "
        "whenever the current file contains a native_path result",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="require and enforce the serve_loadgen invariants "
        "(correct results, no errors, zero steady-state shm traffic) "
        "on the current file; also enforced whenever the current file "
        "contains a serve_loadgen result",
    )
    parser.add_argument(
        "--zoo", action="store_true",
        help="require and enforce the machine_zoo invariants (every "
        f"cell verified, >= {ZOO_MIN_MACHINES} machines x "
        f">= {ZOO_MIN_WORKLOADS} workload kinds, both algorithms) on "
        "the current file; also enforced whenever the current file "
        "contains a machine_zoo result",
    )
    parser.add_argument(
        "--stream", action="store_true",
        help="require and enforce the stream_path invariants (verified "
        "streamed output, zero incorrect keys, runs + a merge pass "
        f"exercised, throughput >= {STREAM_FLOOR_MB_S:.0f} MB/s) on the "
        "current file; also enforced whenever the current file "
        "contains a stream_path result",
    )
    args = parser.parse_args(argv)

    baseline = load_results(args.baseline)
    current = load_results(args.current)
    shared = sorted(set(baseline) & set(current))
    print(
        f"comparing {args.current} against {args.baseline}: "
        f"shared experiments: {', '.join(shared) or '(none)'}"
    )

    failures = 0
    for exp_id, path, b, c, rel in diff_shared(baseline, current, args.rtol):
        failures += 1
        print(
            f"  DRIFT {exp_id}:{path}: {b:g} -> {c:g} "
            f"({rel:+.2%} vs rtol {args.rtol:.0%})"
        )
    if args.predict_budget is not None or "predict_compare" in current:
        for message in check_predict(current, args.predict_budget):
            failures += 1
            print(f"  FAIL {message}")
    if args.serve or "serve_loadgen" in current:
        for message in check_serve(current):
            failures += 1
            print(f"  FAIL {message}")
    if args.native or "native_path" in current:
        for message in check_native(current):
            failures += 1
            print(f"  FAIL {message}")
    if args.stream or "stream_path" in current:
        for message in check_stream(current):
            failures += 1
            print(f"  FAIL {message}")
    if args.zoo or "machine_zoo" in current:
        for message in check_zoo(current):
            failures += 1
            print(f"  FAIL {message}")
    if failures:
        print(f"{failures} failure(s)")
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
