"""Figure 4: per-processor time breakdown, radix sort, 64M keys, 64p."""

from repro.report import figure4


def test_fig4_radix_breakdown(benchmark, runner, save):
    res = benchmark.pedantic(lambda: figure4(runner), rounds=1, iterations=1)
    save(res)
    cc = res.data["ccsas"]["means_ns"]
    assert cc["LMEM"] + cc["RMEM"] > cc["BUSY"]
    assert (
        res.data["mpi-new"]["means_ns"]["SYNC"]
        > res.data["shmem"]["means_ns"]["SYNC"]
    )
