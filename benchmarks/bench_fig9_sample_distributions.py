"""Figure 9: sample-sort relative time across key distributions (CC-SAS)."""

from repro.report import figure9


def test_fig9_sample_distributions(benchmark, runner, save):
    res = benchmark.pedantic(lambda: figure9(runner), rounds=1, iterations=1)
    save(res)
    assert res.data["256M"]["local"] < 0.95
    assert abs(res.data["1M"]["random"] - 1.0) < 0.2
