"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one table/figure of the paper.  The experiment
runner is session-scoped and memoizing, so grid cells shared between
figures (e.g. the Gauss radix-8 cells used by Figures 1, 3 and Table 2)
are simulated exactly once.  Rendered outputs are written to
``benchmarks/output/`` and printed (visible with ``pytest -s``).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.experiment import ExperimentRunner

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner()


@pytest.fixture(scope="session")
def save():
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _save(result) -> None:
        path = OUTPUT_DIR / f"{result.exp_id}.txt"
        path.write_text(result.text + "\n")
        print()
        print(result.text)

    return _save
