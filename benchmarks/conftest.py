"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one table/figure of the paper.  The experiment
runner is session-scoped and memoizing, so grid cells shared between
figures (e.g. the Gauss radix-8 cells used by Figures 1, 3 and Table 2)
are simulated exactly once -- and persistently disk-cached, so a rerun
is served from ``$REPRO_CACHE_DIR`` / ``~/.cache/repro`` (disable with
``--no-cache``; fan cache misses out over worker processes with
``--parallel N``).  Rendered outputs are written to
``benchmarks/output/`` and printed (visible with ``pytest -s``).

``pytest benchmarks/ --json results.json`` additionally writes every
saved experiment's numbers as one machine-readable JSON document (same
schema as ``python -m repro ... --json``; diff against the checked-in
``benchmarks/BENCH_0.json`` baseline).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.experiment import ExperimentRunner

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

_RESULTS: list = []


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        metavar="PATH",
        default=None,
        help="write all saved benchmark results as machine-readable JSON",
    )
    parser.addoption(
        "--parallel",
        type=int,
        metavar="N",
        default=None,
        help="compute grid cells missing from the cache across N worker "
        "processes",
    )
    parser.addoption(
        "--no-cache",
        action="store_true",
        default=False,
        help="ignore the persistent disk cache (REPRO_CACHE_DIR / "
        "~/.cache/repro)",
    )


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--json", default=None)
    if path and _RESULTS:
        from repro.report.emit import write_results_json

        ordered = sorted(_RESULTS, key=lambda r: r.exp_id)
        write_results_json(path, ordered, meta={"source": "benchmarks"})
        print(f"\n{len(ordered)} benchmark results -> {path}")


@pytest.fixture(scope="session")
def runner(request) -> ExperimentRunner:
    return ExperimentRunner(
        cache=False if request.config.getoption("--no-cache") else None,
        parallel=request.config.getoption("--parallel"),
    )


@pytest.fixture(scope="session")
def save():
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _save(result) -> None:
        path = OUTPUT_DIR / f"{result.exp_id}.txt"
        path.write_text(result.text + "\n")
        _RESULTS.append(result)
        print()
        print(result.text)

    return _save
