"""Native backend: real multiprocessing sorts vs numpy's sequential sort.

No paper analogue -- a sanity benchmark for the host-machine backend.
NumPy's optimized C sort usually wins on plain int64 (Python's process
overheads are real); the interesting column is scaling across workers.
"""

import numpy as np
import pytest

from repro.native import WorkerPool, parallel_sample_sort

N = 1 << 21


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(7).integers(0, 1 << 31, N, dtype=np.int64)


@pytest.fixture(scope="module")
def pool():
    with WorkerPool() as p:
        yield p


def test_numpy_baseline(benchmark, data):
    benchmark(lambda: np.sort(data))


def test_native_sample_sort(benchmark, data, pool):
    result = benchmark.pedantic(
        lambda: parallel_sample_sort(data, pool=pool), rounds=3, iterations=1
    )
    assert np.array_equal(result, np.sort(data))
