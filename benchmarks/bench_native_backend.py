"""Native backend: real multiprocessing sorts vs numpy's sequential sort.

No paper analogue -- a sanity benchmark for the host-machine backend,
driven through the unified ``Backend`` seam.  NumPy's optimized C sort
usually wins on plain int64 (Python's process overheads are real); the
interesting columns are scaling across workers and the BUSY/SYNC split
the backend's per-phase wall-clock accounting reports.
"""

import numpy as np
import pytest

from repro.backend import NativeBackend, SortJob
from repro.native import WorkerPool, parallel_sample_sort

N = 1 << 21


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(7).integers(0, 1 << 31, N, dtype=np.int64)


@pytest.fixture(scope="module")
def pool():
    with WorkerPool(collect_timings=True) as p:
        yield p


@pytest.fixture(scope="module")
def backend(pool):
    return NativeBackend(pool=pool)


def test_numpy_baseline(benchmark, data):
    benchmark(lambda: np.sort(data))


def test_native_sample_sort(benchmark, data, pool):
    result = benchmark.pedantic(
        lambda: parallel_sample_sort(data, pool=pool), rounds=3, iterations=1
    )
    assert np.array_equal(result, np.sort(data))


def test_native_backend_sample(benchmark, data, backend):
    """The same sort through the Backend seam, with perf accounting."""
    result = benchmark.pedantic(
        lambda: backend.run(SortJob(keys=data, algorithm="sample")),
        rounds=3,
        iterations=1,
    )
    assert np.array_equal(result.sorted_keys, np.sort(data))
    assert result.report.total_time_ns > 0
    means = result.report.category_means_ns()
    assert means["BUSY"] > 0  # workers did attribute real in-task time


def test_native_backend_radix(benchmark, data, backend):
    result = benchmark.pedantic(
        lambda: backend.run(SortJob(keys=data, algorithm="radix")),
        rounds=3,
        iterations=1,
    )
    assert np.array_equal(result.sorted_keys, np.sort(data))
    assert result.report.total_time_ns > 0
