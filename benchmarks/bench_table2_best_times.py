"""Tables 2 and 3: best times and best model+radix combinations.

One grid feeds both tables; this bench saves Table 2 and the companion
bench_table3 file saves Table 3 from the same memoized cells.
"""

from repro.report import tables2_and_3

GRID = dict(radix_choices=[8, 11, 12],
            radix_models=["ccsas", "ccsas-new", "mpi-new", "shmem"],
            sample_models=["ccsas", "mpi-new", "shmem"])


def test_table2_best_times(benchmark, runner, save):
    t2, _ = benchmark.pedantic(
        lambda: tables2_and_3(runner, **GRID), rounds=1, iterations=1
    )
    save(t2)
    radix, sample = t2.data["radix"], t2.data["sample"]
    # Sample wins the smallest cell at 64p, radix the large ones.
    assert sample["1M"][64] < radix["1M"][64]
    assert radix["64M"][64] < sample["64M"][64]
