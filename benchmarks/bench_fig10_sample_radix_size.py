"""Figure 10: effect of radix size on sample sort (CC-SAS, 64p)."""

from repro.report import figure10


def test_fig10_sample_radix_size(benchmark, runner, save):
    res = benchmark.pedantic(lambda: figure10(runner), rounds=1, iterations=1)
    save(res)
    for size, row in res.data.items():
        best = min(row, key=row.get)
        assert best in ("r=11", "r=12"), (size, best)
        assert max(row.values()) / min(row.values()) < 2.2
