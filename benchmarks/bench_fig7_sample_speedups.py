"""Figure 7: sample-sort speedups under SHMEM / CC-SAS / MPI."""

from repro.report import figure7


def test_fig7_sample_speedups(benchmark, runner, save):
    res = benchmark.pedantic(lambda: figure7(runner), rounds=1, iterations=1)
    save(res)
    small = res.data["1M/64p"]
    assert small["ccsas"] == max(small.values())
    big = res.data["64M/64p"]
    assert big["mpi-new"] == min(big.values())
