"""Table 3: the winning (model, radix size) per grid cell."""

from repro.report import tables2_and_3

from bench_table2_best_times import GRID


def test_table3_best_combos(benchmark, runner, save):
    _, t3 = benchmark.pedantic(
        lambda: tables2_and_3(runner, **GRID), rounds=1, iterations=1
    )
    save(t3)
    # Headline conclusions: radix/SHMEM for large sets, sample/CC-SAS for
    # small ones; CC-SAS also wins radix's 1M cells.
    assert t3.data["radix"]["64M"][64][0] == "shmem"
    assert t3.data["radix"]["1M"][64][0] == "ccsas"
    assert t3.data["sample"]["1M"][64][0] == "ccsas"
