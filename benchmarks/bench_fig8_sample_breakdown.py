"""Figure 8: per-processor time breakdown, sample sort, 64M keys, 64p."""

from repro.report import figure8


def test_fig8_sample_breakdown(benchmark, runner, save):
    res = benchmark.pedantic(lambda: figure8(runner), rounds=1, iterations=1)
    save(res)
    for panel in res.data.values():
        means = panel["means_ns"]
        assert means["BUSY"] > 0.5 * sum(means.values())
