"""Ablation benchmarks: turn off one modeled mechanism at a time.

Each ablation zeroes one of the machine mechanisms the paper identifies
and checks that the corresponding headline result *disappears* -- evidence
that the reproduction gets the paper's effects from the paper's causes,
not from tuning coincidences.

- no protocol contention  -> the CC-SAS radix collapse vanishes (Fig 3/4)
- no staging copies       -> MPI-SGI ~ MPI-NEW (Fig 1)
- no 1-deep channel stall -> MPI SYNC drops toward SHMEM's (Fig 4)
- no TLB costs            -> the sequential baseline flattens, killing
                             most of the superlinearity (Fig 3)
"""

import pytest

from repro.core.experiment import ExperimentRunner, RunSpec, SIZES
from repro.machine.costs import DEFAULT_COSTS

SPEC_CCSAS = RunSpec("radix", "ccsas", SIZES["64M"], 64, 8)
SPEC_SHMEM = RunSpec("radix", "shmem", SIZES["64M"], 64, 8)
SPEC_SGI = RunSpec("radix", "mpi-sgi", SIZES["64M"], 64, 8)
SPEC_NEW = RunSpec("radix", "mpi-new", SIZES["64M"], 64, 8)


@pytest.fixture(scope="module")
def baseline():
    return ExperimentRunner(DEFAULT_COSTS)


def test_ablation_protocol_contention(benchmark, baseline):
    """Without protocol-transaction contention, scattered CC-SAS writes
    cost no more than bulk ones and the collapse disappears."""
    ablated_costs = DEFAULT_COSTS.scaled(
        scattered_write_contention=DEFAULT_COSTS.bulk_write_contention,
        scattered_write_contention_span=0.0,
    )

    def run():
        ablated = ExperimentRunner(ablated_costs)
        return (
            baseline.run(SPEC_CCSAS).time_ns / baseline.run(SPEC_SHMEM).time_ns,
            ablated.run(SPEC_CCSAS).time_ns / ablated.run(SPEC_SHMEM).time_ns,
        )

    with_contention, without = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nCC-SAS/SHMEM time ratio at 64M: {with_contention:.2f} with "
          f"contention, {without:.2f} without")
    assert with_contention > 2.0
    assert without < 1.5


def test_ablation_staging_copy(benchmark, baseline):
    """Without the staging copy and its overhead gap, SGI ~ NEW."""
    ablated_costs = DEFAULT_COSTS.scaled(
        mpi_sgi_overhead_ns=DEFAULT_COSTS.mpi_new_overhead_ns,
        mpi_sgi_ns_per_byte=DEFAULT_COSTS.mpi_new_ns_per_byte,
        mpi_sgi_stage_ns_per_byte=0.0,
        allgather_mpi_sgi_factor=DEFAULT_COSTS.allgather_mpi_new_factor,
    )

    def run():
        ablated = ExperimentRunner(ablated_costs)
        return (
            baseline.run(SPEC_SGI).time_ns / baseline.run(SPEC_NEW).time_ns,
            ablated.run(SPEC_SGI).time_ns / ablated.run(SPEC_NEW).time_ns,
        )

    with_copy, without = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nSGI/NEW time ratio at 64M: {with_copy:.2f} with staging, "
          f"{without:.2f} without")
    assert with_copy > 1.3
    assert without == pytest.approx(1.0, abs=0.05)


def test_ablation_channel_stall(benchmark, baseline):
    """Without the 1-deep channel drain, MPI's SYNC time shrinks."""
    ablated_costs = DEFAULT_COSTS.scaled(mpi_channel_drain_ns=0.0)

    def run():
        ablated = ExperimentRunner(ablated_costs)
        return (
            baseline.run(SPEC_NEW).report.category_means_ns()["SYNC"],
            ablated.run(SPEC_NEW).report.category_means_ns()["SYNC"],
        )

    with_stall, without = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nMPI mean SYNC at 64M: {with_stall / 1e6:.1f} ms with the "
          f"1-deep stall, {without / 1e6:.1f} ms without")
    assert without < with_stall


def test_ablation_tlb(benchmark):
    """Without TLB costs the sequential baseline loses its capacity
    growth, cutting the superlinear speedup."""
    ablated_costs = DEFAULT_COSTS.scaled(tlb_miss_ns=0.0)

    def run():
        base = ExperimentRunner(DEFAULT_COSTS)
        ablated = ExperimentRunner(ablated_costs)
        return (
            base.speedup(SPEC_SHMEM),
            ablated.speedup(SPEC_SHMEM),
        )

    with_tlb, without = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nSHMEM 64M/64p speedup: {with_tlb:.0f} with TLB costs, "
          f"{without:.0f} without")
    assert with_tlb > 64  # superlinear
    assert without < with_tlb - 10


def test_variant_mpi_message_strategy(benchmark):
    """The paper's Section 3.1 implementation tradeoff: one message per
    chunk (chosen) vs one packed message per destination (rejected)."""
    from repro.data import generate
    from repro.machine import MachineConfig
    from repro.models import MPINewModel
    from repro.sorts import ParallelRadixSort

    machine = MachineConfig.origin2000(n_processors=64, scale=1)
    keys = generate("gauss", 1 << 17, 64)

    def run():
        times = {}
        for label, combine in (("per-chunk", False), ("per-dest", True)):
            out = ParallelRadixSort(
                MPINewModel(combine_messages=combine), radix=8
            ).run(keys, n_procs=64, machine=machine, n_labeled=SIZES["64M"])
            times[label] = out.time_ns
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nMPI radix 64M/64p: per-chunk {times['per-chunk'] / 1e6:.0f} ms, "
          f"per-destination {times['per-dest'] / 1e6:.0f} ms")
    assert times["per-chunk"] < times["per-dest"]


def test_variant_shmem_put_vs_get(benchmark):
    """Get deposits data in the requester's cache; put leaves it cold."""
    from repro.data import generate
    from repro.machine import MachineConfig
    from repro.models import SHMEMModel
    from repro.sorts import ParallelRadixSort

    machine = MachineConfig.origin2000(n_processors=64, scale=1)
    keys = generate("gauss", 1 << 17, 64)

    def run():
        return {
            op: ParallelRadixSort(SHMEMModel(op=op), radix=8)
            .run(keys, n_procs=64, machine=machine, n_labeled=SIZES["64M"])
            .time_ns
            for op in ("get", "put")
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nSHMEM radix 64M/64p: get {times['get'] / 1e6:.0f} ms, "
          f"put {times['put'] / 1e6:.0f} ms")
    assert times["get"] < times["put"]


def test_variant_page_placement(benchmark):
    """First-touch partition-local pages vs round-robin striping."""
    from repro.data import generate
    from repro.machine import MachineConfig
    from repro.sorts import ParallelRadixSort

    keys = generate("gauss", 1 << 17, 64)

    def run():
        times = {}
        for policy in ("first-touch", "round-robin"):
            machine = MachineConfig.origin2000(
                n_processors=64, scale=1
            ).with_placement(policy)
            out = ParallelRadixSort("shmem", radix=8).run(
                keys, n_procs=64, machine=machine, n_labeled=SIZES["64M"]
            )
            times[policy] = out.time_ns
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nSHMEM radix 64M/64p: first-touch "
          f"{times['first-touch'] / 1e6:.0f} ms, round-robin "
          f"{times['round-robin'] / 1e6:.0f} ms")
    assert times["first-touch"] < times["round-robin"]
