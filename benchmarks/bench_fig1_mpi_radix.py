"""Figure 1: radix-sort speedups under the two MPI implementations."""

from repro.report import figure1


def test_fig1_mpi_radix(benchmark, runner, save):
    res = benchmark.pedantic(lambda: figure1(runner), rounds=1, iterations=1)
    save(res)
    for cell in res.data.values():
        assert cell["mpi-new"] > cell["mpi-sgi"]
