"""Section 4.4 "Putting it All Together": best algorithm x model per cell."""

from repro.report import summary


def test_summary_best_combinations(benchmark, runner, save):
    res = benchmark.pedantic(lambda: summary(runner), rounds=1, iterations=1)
    save(res)
    # The paper's closing conclusion.
    assert res.data["1M/64p"]["winner"] == "sample/ccsas"
    for size in ("16M", "64M", "256M"):
        assert res.data[f"{size}/64p"]["winner"] == "radix/shmem", size
