"""Calibration harness: compare simulated shapes against paper Tables 2/3 and Figure 3/7."""
import sys
import numpy as np
from repro.core.experiment import ExperimentRunner, RunSpec, SIZES

runner = ExperimentRunner()

print("=== Sequential baseline (paper Table 1, microseconds) ===")
paper_t1 = {"1M": 1610142, "4M": 7013044, "16M": 33668308, "64M": 143693696, "256M": 947575676}
for label, n in SIZES.items():
    seq = runner.sequential(n)
    print(f"{label:>5}: model {seq.time_ns/1e3:>12.0f} us   paper {paper_t1[label]:>10} us   ratio {seq.time_ns/1e3/paper_t1[label]:.2f}")

print("\n=== Radix sort speedups at r=8 (paper Fig 3) ===")
print(f"{'size':>5} {'p':>3} | " + " ".join(f"{m:>10}" for m in ["ccsas","ccsas-new","mpi-new","mpi-sgi","shmem"]))
for label in ["1M", "4M", "16M", "64M"]:
    for p in [16, 64]:
        row = []
        for m in ["ccsas","ccsas-new","mpi-new","mpi-sgi","shmem"]:
            s = runner.speedup(RunSpec("radix", m, SIZES[label], p, 8))
            row.append(f"{s:10.1f}")
        print(f"{label:>5} {p:>3} | " + " ".join(row))

print("\n=== Sample sort speedups at r=11 (paper Fig 7) ===")
for label in ["1M", "4M", "16M", "64M"]:
    for p in [16, 64]:
        row = []
        for m in ["ccsas","mpi-new","mpi-sgi","shmem"]:
            s = runner.speedup(RunSpec("sample", m, SIZES[label], p, 11))
            row.append(f"{s:10.1f}")
        print(f"{label:>5} {p:>3} | " + " ".join(row))

print("\n=== Phase summaries radix 64M/64p ===")
for m in ["ccsas", "ccsas-new", "mpi-new", "shmem"]:
    out = runner.run(RunSpec("radix", m, SIZES["64M"], 64, 8))
    rep = out.report
    fr = rep.category_fractions()
    print(f"{m:>10}: total {rep.total_time_ns/1e6:8.1f} ms  " +
          " ".join(f"{k}={v:.2f}" for k, v in fr.items()))

print("\n=== Phase summaries sample 64M/64p ===")
for m in ["ccsas", "mpi-new", "shmem"]:
    out = runner.run(RunSpec("sample", m, SIZES["64M"], 64, 11))
    rep = out.report
    fr = rep.category_fractions()
    print(f"{m:>10}: total {rep.total_time_ns/1e6:8.1f} ms  " +
          " ".join(f"{k}={v:.2f}" for k, v in fr.items()))
