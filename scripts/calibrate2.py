"""Calibration part 2: Figures 5/6/9/10 shapes + Fig 4 SYNC check + 256M."""
from repro.core.experiment import ExperimentRunner, RunSpec, SIZES
runner = ExperimentRunner()

print("=== Fig 5: radix/shmem 64p, relative time vs gauss ===")
dists = ["gauss","random","zero","bucket","stagger","remote","half","local"]
for label in ["1M", "16M", "64M", "256M"]:
    base = runner.run(RunSpec("radix","shmem",SIZES[label],64,8,"gauss")).time_ns
    row = []
    for d in dists:
        t = runner.run(RunSpec("radix","shmem",SIZES[label],64,8,d)).time_ns
        row.append(f"{d}:{t/base:5.2f}")
    print(f"{label:>5} " + " ".join(row))

print("\n=== Fig 6: radix/shmem 64p, relative time vs r=8 ===")
for label in ["1M", "4M", "16M", "64M", "256M"]:
    base = runner.run(RunSpec("radix","shmem",SIZES[label],64,8)).time_ns
    row = []
    for r in range(6,13):
        t = runner.run(RunSpec("radix","shmem",SIZES[label],64,r)).time_ns
        row.append(f"r{r}:{t/base:5.2f}")
    best = min(range(6,13), key=lambda r: runner.run(RunSpec("radix","shmem",SIZES[label],64,r)).time_ns)
    print(f"{label:>5} " + " ".join(row) + f"   best=r{best}")

print("\n=== Fig 10: sample/ccsas 64p, relative time vs r=11 ===")
for label in ["1M", "16M", "256M"]:
    base = runner.run(RunSpec("sample","ccsas",SIZES[label],64,11)).time_ns
    row = []
    for r in range(6,13):
        t = runner.run(RunSpec("sample","ccsas",SIZES[label],64,r)).time_ns
        row.append(f"r{r}:{t/base:5.2f}")
    best = min(range(6,13), key=lambda r: runner.run(RunSpec("sample","ccsas",SIZES[label],64,r)).time_ns)
    print(f"{label:>5} " + " ".join(row) + f"   best=r{best}")

print("\n=== Fig 9: sample/ccsas 64p distributions rel gauss ===")
for label in ["1M", "64M", "256M"]:
    base = runner.run(RunSpec("sample","ccsas",SIZES[label],64,11,"gauss")).time_ns
    row = []
    for d in dists:
        t = runner.run(RunSpec("sample","ccsas",SIZES[label],64,11,d)).time_ns
        row.append(f"{d}:{t/base:5.2f}")
    print(f"{label:>5} " + " ".join(row))

print("\n=== Fig 4 SYNC: radix 64M/64p MPI vs SHMEM ===")
for m in ["mpi-new","shmem"]:
    rep = runner.run(RunSpec("radix",m,SIZES["64M"],64,8)).report
    means = rep.category_means_ns()
    print(f"{m}: " + " ".join(f"{k}={v/1e6:8.1f}ms" for k,v in means.items()))

print("\n=== 256M speedups radix 64p ===")
for m in ["ccsas","ccsas-new","mpi-new","shmem"]:
    print(m, f"{runner.speedup(RunSpec('radix',m,SIZES['256M'],64,8)):.1f}")
